//! Property tests for the memoized DAG plane and the pruned `Intersect_u`
//! (vendored proptest shim; randomized tables and example steps).
//!
//! Three families of properties:
//!
//! * **Soundness bounds on intersection** — `intersect_du(a, b)`
//!   represents the set intersection of two program sets, so its count can
//!   never exceed either operand's (the `min(|a|, |b|)` bound the
//!   behavioral soundness suite in `tests/soundness_properties.rs` checks
//!   pointwise).
//! * **Edge-pair pruning vs the oracle** — the optimized `Intersect_u`
//!   (structural edge-pair masks, empty-progset short-circuit, nested-DAG
//!   memo) must never drop (or invent) a program the naive
//!   `intersect_du_unpruned` oracle keeps: counts, sizes, emptiness and
//!   ranked outputs all agree.
//! * **Cache equivalence under randomized multi-step sessions** — a
//!   `DagCache`-backed generation sequence is bit-identical to fresh
//!   generations, including repeated examples (the whole-example memo
//!   path) and repeated key values (the `(sources_epoch, value)` path).

use proptest::prelude::*;

use sst_core::{
    eval_sem, generate_str_u, generate_str_u_cached, intersect_du, intersect_du_parallel,
    intersect_du_unpruned, DagCache, LuOptions, LuRankWeights, Pool, SemDStruct,
};
use sst_tables::{Database, Table};

/// A random 2-column code table with `n` rows; codes unique, names drawn
/// from a small alphabet so distinct rows often repeat values — the
/// repeated-key-value case the DAG cache and nested-DAG memo exist for.
fn code_table(n: usize, seed: u8, repeat_names: bool) -> Table {
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            let name = if repeat_names {
                format!("N{}", (b'A' + (i % 3) as u8) as char)
            } else {
                format!("Val{}{}", (b'A' + seed % 20) as char, i)
            };
            vec![format!("k{seed}{i}"), name]
        })
        .collect();
    Table::new("T", vec!["Code", "Name"], rows).expect("valid random table")
}

fn gen(db: &Database, input: &str, output: &str) -> SemDStruct {
    generate_str_u(db, &[input], output, &LuOptions::default())
}

/// Compares every observable of two intersection results: emptiness,
/// depth-bounded counts, sizes, and the behavior of the ranked top
/// programs on the training inputs.
fn assert_observably_equal(
    pruned: &SemDStruct,
    oracle: &SemDStruct,
    db: &Database,
    inputs: &[&str],
    ctx: &str,
) -> Result<(), TestCaseError> {
    let depth = LuOptions::default().depth_for(db);
    prop_assert_eq!(
        pruned.has_programs(),
        oracle.has_programs(),
        "emptiness drifted: {}",
        ctx
    );
    for d in 0..=depth {
        prop_assert_eq!(
            pruned.count(d),
            oracle.count(d),
            "count at depth {} drifted: {}",
            d,
            ctx
        );
    }
    prop_assert_eq!(pruned.size(), oracle.size(), "size drifted: {}", ctx);
    let w = LuRankWeights::default();
    let tokens = LuOptions::default().syntactic.token_set;
    let (tp, to) = (w.top_k(pruned, depth, 4), w.top_k(oracle, depth, 4));
    prop_assert_eq!(tp.len(), to.len(), "top-k arity drifted: {}", ctx);
    for (p, o) in tp.iter().zip(&to) {
        prop_assert_eq!(p.cost, o.cost, "ranked cost drifted: {}", ctx);
        for input in inputs {
            prop_assert_eq!(
                eval_sem(&p.expr, db, &[input], &tokens),
                eval_sem(&o.expr, db, &[input], &tokens),
                "ranked behavior drifted on {:?}: {}",
                input,
                ctx
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// |a ∩ b| ≤ min(|a|, |b|) at every lookup depth.
    #[test]
    fn intersection_count_never_exceeds_either_side(
        n in 3usize..7,
        seed in 0u8..20,
        pick1 in 0usize..8,
        pick2 in 0usize..8,
        repeat in 0u8..2,
    ) {
        let table = code_table(n, seed, repeat == 1);
        let (p1, p2) = (pick1 % n, pick2 % n);
        let in1 = table.cell(0, p1 as u32).to_string();
        let out1 = table.cell(1, p1 as u32).to_string();
        let in2 = table.cell(0, p2 as u32).to_string();
        let out2 = table.cell(1, p2 as u32).to_string();
        let db = Database::from_tables(vec![table]).unwrap();
        let d1 = gen(&db, &in1, &out1);
        let d2 = gen(&db, &in2, &out2);
        let inter = intersect_du(&d1, &d2);
        let depth = LuOptions::default().depth_for(&db);
        for d in 0..=depth {
            let (ci, c1, c2) = (inter.count(d), d1.count(d), d2.count(d));
            let min = if c1 <= c2 { c1 } else { c2 };
            prop_assert!(
                ci <= min,
                "depth {d}: |inter| = {ci} exceeds min(|a|, |b|) = {min} \
                 for {in1:?}->{out1:?} x {in2:?}->{out2:?}"
            );
        }
    }

    /// The optimized intersection agrees with the naive oracle on every
    /// observable — in particular, edge-pair pruning never drops a program
    /// the unpruned `Intersect_u` keeps.
    #[test]
    fn pruned_intersection_matches_unpruned_oracle(
        n in 3usize..7,
        seed in 0u8..20,
        pick1 in 0usize..8,
        pick2 in 0usize..8,
        repeat in 0u8..2,
        extra in "[a-z]{0,3}",
    ) {
        let table = code_table(n, seed, repeat == 1);
        let (p1, p2) = (pick1 % n, pick2 % n);
        let in1 = table.cell(0, p1 as u32).to_string();
        let out1 = format!("{}{extra}", table.cell(1, p1 as u32));
        let in2 = table.cell(0, p2 as u32).to_string();
        let out2 = format!("{}{extra}", table.cell(1, p2 as u32));
        let db = Database::from_tables(vec![table]).unwrap();
        let d1 = gen(&db, &in1, &out1);
        let d2 = gen(&db, &in2, &out2);
        let pruned = intersect_du(&d1, &d2);
        let oracle = intersect_du_unpruned(&d1, &d2);
        let ctx = format!("{in1:?}->{out1:?} x {in2:?}->{out2:?}");
        assert_observably_equal(&pruned, &oracle, &db, &[&in1, &in2], &ctx)?;
    }

    /// The discovery-scheduled parallel plane agrees with the serial
    /// intersection on every observable, at every pool width, on
    /// randomized tables and outputs (including the conflicting-output
    /// cases that intersect to empty).
    #[test]
    fn parallel_plane_matches_serial_on_random_cases(
        n in 3usize..7,
        seed in 0u8..20,
        pick1 in 0usize..8,
        pick2 in 0usize..8,
        repeat in 0u8..2,
        extra in "[a-z]{0,3}",
        threads in 2usize..5,
    ) {
        let table = code_table(n, seed, repeat == 1);
        let (p1, p2) = (pick1 % n, pick2 % n);
        let in1 = table.cell(0, p1 as u32).to_string();
        let out1 = format!("{}{extra}", table.cell(1, p1 as u32));
        let in2 = table.cell(0, p2 as u32).to_string();
        let out2 = format!("{}{extra}", table.cell(1, p2 as u32));
        let db = Database::from_tables(vec![table]).unwrap();
        let d1 = gen(&db, &in1, &out1);
        let d2 = gen(&db, &in2, &out2);
        let serial = intersect_du(&d1, &d2);
        let par = intersect_du_parallel(&d1, &d2, &Pool::new(threads));
        let ctx = format!("{in1:?}->{out1:?} x {in2:?}->{out2:?} @ {threads} threads");
        assert_observably_equal(&par, &serial, &db, &[&in1, &in2], &ctx)?;
    }

    /// A randomized multi-step session through one `DagCache` produces
    /// bit-identical structures to fresh uncached generations — including
    /// the repeated-example (memo hit) and repeated-key-value cases.
    #[test]
    fn cached_generation_is_bit_identical_across_sessions(
        n in 3usize..7,
        seed in 0u8..20,
        steps in prop::collection::vec(0usize..8, 2..6),
    ) {
        let table = code_table(n, seed, true);
        let db = Database::from_tables(vec![table.clone()]).unwrap();
        let opts = LuOptions::default();
        let depth = opts.depth_for(&db);
        let cache = DagCache::new();
        for &pick in &steps {
            let pick = pick % n;
            let input = table.cell(0, pick as u32).to_string();
            let output = table.cell(1, pick as u32).to_string();
            let cached = generate_str_u_cached(&db, &[&input], &output, &opts, &cache);
            let fresh = generate_str_u(&db, &[&input], &output, &opts);
            prop_assert_eq!(cached.len(), fresh.len());
            prop_assert_eq!(cached.count(depth), fresh.count(depth));
            prop_assert_eq!(cached.size(), fresh.size());
            // Intersecting a cached and a fresh structure exercises the
            // Arc-shared DAGs through the full pipeline.
            let inter = intersect_du(&cached, &fresh);
            prop_assert_eq!(inter.count(depth), fresh.count(depth));
        }
    }
}

#[test]
fn dag_cache_shares_repeated_key_value_dags() {
    // A composite candidate key (Brand, Disp): single key-column values
    // repeat across rows ("Ducati" pins three of them), so every row
    // activated in one step re-derives the same predicate DAG. With the
    // cache, the first build serves the rest — observable as per-value DAG
    // hits.
    let table = Table::new(
        "Bikes",
        vec!["Brand", "Disp", "Price"],
        vec![
            vec!["Ducati", "100", "10,000"],
            vec!["Ducati", "125", "12,500"],
            vec!["Ducati", "250", "18,000"],
            vec!["Honda", "125", "11,500"],
        ],
    )
    .unwrap();
    let db = Database::from_tables(vec![table]).unwrap();
    let opts = LuOptions::default();
    let cache = DagCache::new();
    let d = generate_str_u_cached(&db, &["Ducati 125 vs Ducati 250"], "12,500", &opts, &cache);
    assert!(d.has_programs());
    let stats = cache.stats();
    assert!(
        stats.dag_hits > 0,
        "repeated key values must hit the per-value DAG memo: {stats:?}"
    );
}
