//! Date-related background tables of paper Example 8.

use sst_tables::Table;

/// Builds the `Month` table: `MN` (1..12) ↔ `MW` (January..December).
/// Both columns are candidate keys by themselves.
pub fn month_table() -> Table {
    const NAMES: [&str; 12] = [
        "January",
        "February",
        "March",
        "April",
        "May",
        "June",
        "July",
        "August",
        "September",
        "October",
        "November",
        "December",
    ];
    let rows: Vec<Vec<String>> = NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| vec![(i + 1).to_string(), (*name).to_string()])
        .collect();
    Table::with_keys(
        "Month",
        vec!["MN", "MW"],
        rows,
        vec![vec!["MN"], vec!["MW"]],
    )
    .expect("Month table is well-formed")
}

/// Builds the `DateOrd` table: day number (1..31) → ordinal suffix
/// (`st`, `nd`, `rd`, `th`). `Num` is the primary key.
pub fn date_ord_table() -> Table {
    let rows: Vec<Vec<String>> = (1..=31u32)
        .map(|d| vec![d.to_string(), ordinal_suffix(d).to_string()])
        .collect();
    Table::with_keys("DateOrd", vec!["Num", "Ord"], rows, vec![vec!["Num"]])
        .expect("DateOrd table is well-formed")
}

/// Ordinal suffix for a day-of-month.
pub fn ordinal_suffix(d: u32) -> &'static str {
    match (d % 100, d % 10) {
        (11..=13, _) => "th",
        (_, 1) => "st",
        (_, 2) => "nd",
        (_, 3) => "rd",
        _ => "th",
    }
}

/// Builds the `Weekday` table: `WN` (1..7, Monday=1) ↔ `WW` (Monday..
/// Sunday), plus a 3-letter abbreviation column `WA` (also a key).
pub fn weekday_table() -> Table {
    const NAMES: [&str; 7] = [
        "Monday",
        "Tuesday",
        "Wednesday",
        "Thursday",
        "Friday",
        "Saturday",
        "Sunday",
    ];
    let rows: Vec<Vec<String>> = NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                (i + 1).to_string(),
                (*name).to_string(),
                name[..3].to_string(),
            ]
        })
        .collect();
    Table::with_keys(
        "Weekday",
        vec!["WN", "WW", "WA"],
        rows,
        vec![vec!["WN"], vec!["WW"], vec!["WA"]],
    )
    .expect("Weekday table is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_bidirectional_keys() {
        let t = month_table();
        assert_eq!(t.len(), 12);
        let row = t.find_unique_row(&[(0, "6")]).unwrap();
        assert_eq!(t.cell(1, row), "June");
        let row = t.find_unique_row(&[(1, "December")]).unwrap();
        assert_eq!(t.cell(0, row), "12");
    }

    #[test]
    fn date_ord_suffixes_match_english() {
        let t = date_ord_table();
        assert_eq!(t.len(), 31);
        let check = |num: &str, ord: &str| {
            let row = t.find_unique_row(&[(0, num)]).unwrap();
            assert_eq!(t.cell(1, row), ord, "day {num}");
        };
        check("1", "st");
        check("2", "nd");
        check("3", "rd");
        check("4", "th");
        check("11", "th");
        check("12", "th");
        check("13", "th");
        check("21", "st");
        check("22", "nd");
        check("23", "rd");
        check("31", "st");
    }

    #[test]
    fn ordinal_suffix_helper() {
        assert_eq!(ordinal_suffix(101), "st");
        assert_eq!(ordinal_suffix(111), "th");
    }

    #[test]
    fn weekday_three_keys() {
        let t = weekday_table();
        assert_eq!(t.candidate_keys().len(), 3);
        let row = t.find_unique_row(&[(2, "Wed")]).unwrap();
        assert_eq!(t.cell(1, row), "Wednesday");
    }
}
