//! Compiled apply plane: bytecode lowering and execution for `Lu`
//! programs.
//!
//! The interpreter ([`eval_sem`]) walks the expression tree per input row:
//! every atom allocates its intermediate `String`, every `SubStr` computes
//! [`StringRuns`] for the *whole* token set, every `Select` re-resolves its
//! condition values into fresh vectors. That is fine for learning (a
//! handful of rows) but not for the paper's deployment story — applying a
//! learned transformation to an entire spreadsheet column.
//!
//! [`CompiledProgram`] lowers a ranked program once into a flat op array
//! over the interned [`Symbol`] plane:
//!
//! - position expressions pre-resolve their token chains against the
//!   program's `TokenSet` ([`TokenPlan`]/[`CompiledPos`]), so per-row run
//!   computation covers only the tokens the program consults;
//! - `Select` conditions with constant right-hand sides intern their probe
//!   value at compile time (a symbol that matches no cell misses exactly
//!   like the interpreter's `Symbol::get` miss); an all-constant probe
//!   resolves to its cell **entirely at compile time**, and the common
//!   single-condition probe lowers to a direct `value → cell` hash map
//!   built from the table once (unique matches only — absence covers both
//!   the interpreter's postings miss and its ambiguity `None`, which are
//!   indistinguishable at the string level: both yield `""`). Remaining
//!   multi-condition probes stay `(col, Symbol) → rows` posting-map hits
//!   plus integer compares;
//! - concatenation and extraction write into reusable buffers owned by an
//!   [`ApplyScratch`], so a warmed-up row apply performs no allocation;
//! - repeated subexpressions are hash-consed at compile time (the
//!   interpreter re-evaluates them; they are pure, so reuse is
//!   observationally identical).
//!
//! Undefined values (`⊥`) short-circuit: ops are emitted in the
//! interpreter's evaluation order, and any undefined position, crossed
//! range or missing variable aborts the row with `None` — exactly when the
//! interpreter would. The equivalence (including lookup-miss empty
//! strings and unicode subjects) is pinned per-task, per-row and
//! per-thread-count by `tests/compiled_equivalence.rs`.
//!
//! [`eval_sem`]: crate::eval::eval_sem
//! [`StringRuns`]: sst_syntactic::StringRuns

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::mem;
use std::sync::Arc;

use sst_par::Pool;
use sst_syntactic::{eval_compiled_pos, AtomicExpr, CompiledPos, RunsBuf, TokenPlan, TokenSet};
use sst_tables::{ColId, Database, Symbol, TableId};

use crate::language::{LookupU, PredRhsU, SemAtom, SemExpr};

/// Rows per parallel chunk floor: below this, fan-out overhead dominates.
const PAR_CHUNK_MIN: usize = 1024;

/// A dependency-free FxHash (the rustc/Firefox multiply-rotate hash):
/// probe keys are short cell values, where SipHash's per-call setup
/// dominates the default `HashMap` — this keeps the hot single-condition
/// probe to a few nanoseconds. Only used for compile-time-built maps, so
/// HashDoS resistance is irrelevant.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let mut rem = bytes.len() as u64;
        for (i, &b) in chunks.remainder().iter().enumerate() {
            rem ^= (b as u64) << (8 * i + 8);
        }
        self.add(rem);
    }

    fn write_u8(&mut self, b: u8) {
        self.add(b as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A single-condition probe pre-resolved at compile time: condition value
/// → output cell, for exactly the values matching one row.
type ProbeMap = HashMap<&'static str, &'static str, BuildHasherDefault<FxHasher>>;

/// One instruction of the compiled program. String-producing ops write a
/// *slot* (a cheap descriptor of where the string lives); `Runs`/`Pos`
/// feed the position machinery.
#[derive(Debug, Clone)]
enum Op {
    /// `slots[dst] = consts[idx]`.
    Const { dst: u32, idx: u32 },
    /// `slots[dst] = row[var]`; row too short ⇒ undefined.
    Input { dst: u32, var: u32 },
    /// Compute plan-token runs of `slots[src]` into runs buffer `runs`.
    Runs { runs: u32, src: u32 },
    /// `pos[dst] = eval(pos)` against runs buffer `runs`; undefined ⇒ `⊥`.
    Pos {
        dst: u32,
        runs: u32,
        pos: CompiledPos,
    },
    /// `slots[dst] = slots[src][pos[p1]..pos[p2]]` (chars, via the byte
    /// table of `runs`); crossed positions ⇒ `⊥`.
    Extract {
        dst: u32,
        buf: u32,
        src: u32,
        runs: u32,
        p1: u32,
        p2: u32,
    },
    /// `slots[dst] = concat(slots[parts...])` into buffer `buf`.
    Concat {
        dst: u32,
        buf: u32,
        parts: Box<[u32]>,
    },
    /// `slots[dst] = cell` — a probe whose conditions were all constant,
    /// resolved once at compile time (`""` on miss/ambiguity).
    Cell { dst: u32, cell: &'static str },
    /// `slots[dst] = map[slots[slot]]` — a single-condition probe as a
    /// direct hash hit on the compile-time `value → cell` map (`""` on
    /// any absent key: never-interned values, postings misses and
    /// ambiguous values alike). `Arc` keeps program clones cheap.
    Probe1 {
        dst: u32,
        slot: u32,
        map: Arc<ProbeMap>,
    },
    /// `slots[dst] = table[col, find_unique_row(conds)]`, empty string on
    /// miss/ambiguity — the `Lt` semantics (multi-condition probes).
    Probe {
        dst: u32,
        table: TableId,
        col: ColId,
        conds: Box<[(ColId, CondVal)]>,
    },
}

/// A probe condition value: interned at compile time for constants,
/// resolved from a slot (then symbol-looked-up, never interned) otherwise.
#[derive(Debug, Clone, Copy)]
enum CondVal {
    Sym(Symbol),
    Slot(u32),
}

/// Where a slot's string currently lives. `Cell` strings are interner-backed
/// (`'static`), so probing results are zero-copy.
#[derive(Debug, Clone, Copy)]
enum SlotVal {
    Unset,
    Input(u32),
    Const(u32),
    Cell(&'static str),
    Buf(u32),
}

/// Reusable per-row execution state for one [`CompiledProgram`].
///
/// Holds every buffer a row apply needs — slot descriptors, string
/// buffers, run buffers, position registers, the probe-condition vector
/// and the output buffer — so applying row after row allocates nothing
/// once the buffers have warmed up.
#[derive(Debug, Default)]
pub struct ApplyScratch {
    slots: Vec<SlotVal>,
    bufs: Vec<String>,
    runs: Vec<RunsBuf>,
    pos: Vec<u32>,
    conds: Vec<(ColId, Symbol)>,
    out: String,
}

impl ApplyScratch {
    fn ensure(&mut self, p: &CompiledProgram) {
        if self.slots.len() < p.n_slots as usize {
            self.slots.resize(p.n_slots as usize, SlotVal::Unset);
        }
        if self.bufs.len() < p.n_bufs as usize {
            self.bufs.resize_with(p.n_bufs as usize, String::new);
        }
        if self.runs.len() < p.n_runs as usize {
            self.runs.resize_with(p.n_runs as usize, RunsBuf::new);
        }
        if self.pos.len() < p.n_pos as usize {
            self.pos.resize(p.n_pos as usize, 0);
        }
    }
}

/// A ranked `Lu` program lowered to linear bytecode; see the module docs.
///
/// Obtained from [`Program::compile`]; bundles the database snapshot and
/// the lowered ops, so it can be applied anywhere — single rows
/// ([`CompiledProgram::run_row`], or [`CompiledProgram::run_row_with`] to
/// reuse a scratch) or whole columns fanned across a worker pool
/// ([`CompiledProgram::run_column`]).
///
/// [`Program::compile`]: crate::synthesizer::Program::compile
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    db: Arc<Database>,
    plan: TokenPlan,
    ops: Box<[Op]>,
    output: Box<[u32]>,
    consts: Box<[String]>,
    n_slots: u32,
    n_bufs: u32,
    n_runs: u32,
    n_pos: u32,
}

impl CompiledProgram {
    /// Lowers an expression; called by `Program::compile`.
    pub(crate) fn lower(expr: &SemExpr, db: Arc<Database>, tokens: &TokenSet) -> Self {
        // The lowerer borrows the database (to pre-resolve probes); end
        // that borrow before moving the `Arc` into the program.
        let (mut plan, ops, output, consts, n_slots, n_bufs, n_runs, n_pos) = {
            let mut lw = Lowerer::new(&db, tokens);
            // Top-level atoms in concatenation order — the interpreter's
            // evaluation order, which the undef short-circuit relies on.
            let output: Vec<u32> = expr.atoms.iter().map(|a| lw.lower_atom(a)).collect();
            (
                lw.plan, lw.ops, output, lw.consts, lw.n_slots, lw.n_bufs, lw.n_runs, lw.n_pos,
            )
        };
        plan.seal();
        CompiledProgram {
            db,
            plan,
            ops: ops.into_boxed_slice(),
            output: output.into_boxed_slice(),
            consts: consts.into_boxed_slice(),
            n_slots,
            n_bufs,
            n_runs,
            n_pos,
        }
    }

    /// Number of lowered ops (introspection/benchmarks).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of distinct tokens the program's positions consult —
    /// typically a small fraction of the learner's full `TokenSet`.
    pub fn token_count(&self) -> usize {
        self.plan.len()
    }

    /// A scratch sized for this program.
    pub fn new_scratch(&self) -> ApplyScratch {
        let mut scratch = ApplyScratch::default();
        scratch.ensure(self);
        scratch
    }

    /// Applies the program to one input row. Allocates a fresh scratch;
    /// batch callers should reuse one via [`CompiledProgram::run_row_with`]
    /// or use [`CompiledProgram::run_column`].
    pub fn run_row<S: AsRef<str>>(&self, row: &[S]) -> Option<String> {
        let mut scratch = self.new_scratch();
        self.run_row_with(row, &mut scratch).map(str::to_string)
    }

    /// Applies the program to one row, reusing `scratch`; the result
    /// borrows the scratch's output buffer (copy it out before the next
    /// row). Bit-identical to interpreting the source expression.
    pub fn run_row_with<'s, S: AsRef<str>>(
        &self,
        row: &[S],
        scratch: &'s mut ApplyScratch,
    ) -> Option<&'s str> {
        scratch.ensure(self);
        let ApplyScratch {
            slots,
            bufs,
            runs,
            pos,
            conds,
            out,
        } = scratch;
        for op in self.ops.iter() {
            match op {
                Op::Const { dst, idx } => slots[*dst as usize] = SlotVal::Const(*idx),
                Op::Input { dst, var } => {
                    if *var as usize >= row.len() {
                        return None;
                    }
                    slots[*dst as usize] = SlotVal::Input(*var);
                }
                Op::Runs { runs: r, src } => {
                    let subject = self.val_str(slots[*src as usize], bufs, row);
                    runs[*r as usize].compute(subject, &self.plan);
                }
                Op::Pos {
                    dst,
                    runs: r,
                    pos: p,
                } => {
                    pos[*dst as usize] = eval_compiled_pos(p, &runs[*r as usize])?;
                }
                Op::Extract {
                    dst,
                    buf,
                    src,
                    runs: r,
                    p1,
                    p2,
                } => {
                    let (a, b) = (pos[*p1 as usize], pos[*p2 as usize]);
                    if a > b {
                        return None;
                    }
                    // Take the destination buffer out first so the source
                    // (possibly another buffer) can be borrowed shared.
                    let mut tmp = mem::take(&mut bufs[*buf as usize]);
                    tmp.clear();
                    let subject = self.val_str(slots[*src as usize], bufs, row);
                    let (ba, bb) = runs[*r as usize].byte_range(a, b);
                    tmp.push_str(&subject[ba..bb]);
                    bufs[*buf as usize] = tmp;
                    slots[*dst as usize] = SlotVal::Buf(*buf);
                }
                Op::Concat { dst, buf, parts } => {
                    let mut tmp = mem::take(&mut bufs[*buf as usize]);
                    tmp.clear();
                    for &part in parts.iter() {
                        tmp.push_str(self.val_str(slots[part as usize], bufs, row));
                    }
                    bufs[*buf as usize] = tmp;
                    slots[*dst as usize] = SlotVal::Buf(*buf);
                }
                Op::Cell { dst, cell } => slots[*dst as usize] = SlotVal::Cell(cell),
                Op::Probe1 { dst, slot, map } => {
                    let val = self.val_str(slots[*slot as usize], bufs, row);
                    let cell = map.get(val).copied().unwrap_or("");
                    slots[*dst as usize] = SlotVal::Cell(cell);
                }
                Op::Probe {
                    dst,
                    table,
                    col,
                    conds: probe_conds,
                } => {
                    conds.clear();
                    let mut missed = false;
                    for (ccol, val) in probe_conds.iter() {
                        let sym = match val {
                            CondVal::Sym(s) => Some(*s),
                            CondVal::Slot(slot) => {
                                Symbol::get(self.val_str(slots[*slot as usize], bufs, row))
                            }
                        };
                        match sym {
                            Some(s) => conds.push((*ccol, s)),
                            // A probe value that was never interned cannot
                            // equal any cell: a miss, same as the
                            // interpreter's `find_unique_row`.
                            None => {
                                missed = true;
                                break;
                            }
                        }
                    }
                    let cell = if missed {
                        ""
                    } else {
                        let t = self.db.table(*table);
                        match t.find_unique_row_sym(conds) {
                            Some(row) => t.cell(*col, row),
                            None => "",
                        }
                    };
                    slots[*dst as usize] = SlotVal::Cell(cell);
                }
            }
        }
        // A single interner-backed output (the pure-lookup shape) needs no
        // copy: the cell outlives every scratch.
        if let [part] = self.output[..] {
            if let SlotVal::Cell(s) = slots[part as usize] {
                return Some(s);
            }
        }
        out.clear();
        for &part in self.output.iter() {
            out.push_str(self.val_str(slots[part as usize], bufs, row));
        }
        Some(out)
    }

    /// Applies the program to a whole column, fanning contiguous row
    /// ranges across `pool` (one scratch per chunk). Output order matches
    /// the input rows by construction at every pool width.
    pub fn run_column<S: AsRef<str> + Sync>(
        &self,
        rows: &[Vec<S>],
        pool: &Pool,
    ) -> Vec<Option<String>> {
        let apply_range = |range: &[Vec<S>]| -> Vec<Option<String>> {
            let mut scratch = self.new_scratch();
            range
                .iter()
                .map(|row| self.run_row_with(row, &mut scratch).map(str::to_string))
                .collect()
        };
        if !pool.is_parallel() || rows.len() < 2 * PAR_CHUNK_MIN {
            return apply_range(rows);
        }
        let chunk = rows.len().div_ceil(pool.threads() * 4).max(PAR_CHUNK_MIN);
        let ranges: Vec<(usize, usize)> = (0..rows.len())
            .step_by(chunk)
            .map(|start| (start, (start + chunk).min(rows.len())))
            .collect();
        let chunks =
            pool.par_map_indexed(&ranges, |_, &(start, end)| apply_range(&rows[start..end]));
        let mut out = Vec::with_capacity(rows.len());
        for c in chunks {
            out.extend(c);
        }
        out
    }

    fn val_str<'a, S: AsRef<str>>(
        &'a self,
        val: SlotVal,
        bufs: &'a [String],
        row: &'a [S],
    ) -> &'a str {
        match val {
            SlotVal::Input(v) => row[v as usize].as_ref(),
            SlotVal::Const(i) => &self.consts[i as usize],
            SlotVal::Cell(s) => s,
            SlotVal::Buf(b) => &bufs[b as usize],
            SlotVal::Unset => {
                debug_assert!(false, "slot read before write");
                ""
            }
        }
    }
}

/// The lowering pass: emits ops in interpreter evaluation order and
/// hash-conses repeated subexpressions (pure, so reuse preserves
/// semantics; each shared node is evaluated at its first occurrence,
/// exactly where the interpreter first evaluates it).
struct Lowerer<'a> {
    db: &'a Database,
    set: &'a TokenSet,
    plan: TokenPlan,
    ops: Vec<Op>,
    consts: Vec<String>,
    n_slots: u32,
    n_bufs: u32,
    n_runs: u32,
    n_pos: u32,
    atom_memo: HashMap<SemAtom, u32>,
    expr_memo: HashMap<SemExpr, u32>,
    lookup_memo: HashMap<LookupU, u32>,
    const_memo: HashMap<String, u32>,
    runs_memo: HashMap<u32, u32>,
    pos_memo: HashMap<(u32, CompiledPos), u32>,
}

impl<'a> Lowerer<'a> {
    fn new(db: &'a Database, set: &'a TokenSet) -> Self {
        Lowerer {
            db,
            set,
            plan: TokenPlan::new(),
            ops: Vec::new(),
            consts: Vec::new(),
            n_slots: 0,
            n_bufs: 0,
            n_runs: 0,
            n_pos: 0,
            atom_memo: HashMap::new(),
            expr_memo: HashMap::new(),
            lookup_memo: HashMap::new(),
            const_memo: HashMap::new(),
            runs_memo: HashMap::new(),
            pos_memo: HashMap::new(),
        }
    }

    fn new_slot(&mut self) -> u32 {
        self.n_slots += 1;
        self.n_slots - 1
    }

    fn new_buf(&mut self) -> u32 {
        self.n_bufs += 1;
        self.n_bufs - 1
    }

    fn lower_expr(&mut self, e: &SemExpr) -> u32 {
        if let Some(&slot) = self.expr_memo.get(e) {
            return slot;
        }
        let slot = if e.atoms.len() == 1 {
            self.lower_atom(&e.atoms[0])
        } else {
            let parts: Vec<u32> = e.atoms.iter().map(|a| self.lower_atom(a)).collect();
            let dst = self.new_slot();
            let buf = self.new_buf();
            self.ops.push(Op::Concat {
                dst,
                buf,
                parts: parts.into_boxed_slice(),
            });
            dst
        };
        self.expr_memo.insert(e.clone(), slot);
        slot
    }

    fn lower_atom(&mut self, a: &SemAtom) -> u32 {
        if let Some(&slot) = self.atom_memo.get(a) {
            return slot;
        }
        let slot = match a {
            AtomicExpr::ConstStr(s) => self.lower_const(s),
            AtomicExpr::Whole(src) => self.lower_lookup(src),
            AtomicExpr::SubStr { src, p1, p2 } => {
                let subject = self.lower_lookup(src);
                let runs = self.runs_for(subject);
                let c1 = self.plan.lower_pos(p1, self.set);
                let c2 = self.plan.lower_pos(p2, self.set);
                let p1 = self.pos_for(runs, c1);
                let p2 = self.pos_for(runs, c2);
                let dst = self.new_slot();
                let buf = self.new_buf();
                self.ops.push(Op::Extract {
                    dst,
                    buf,
                    src: subject,
                    runs,
                    p1,
                    p2,
                });
                dst
            }
        };
        self.atom_memo.insert(a.clone(), slot);
        slot
    }

    fn lower_const(&mut self, s: &str) -> u32 {
        if let Some(&slot) = self.const_memo.get(s) {
            return slot;
        }
        let idx = self.consts.len() as u32;
        self.consts.push(s.to_string());
        let dst = self.new_slot();
        self.ops.push(Op::Const { dst, idx });
        self.const_memo.insert(s.to_string(), dst);
        dst
    }

    fn lower_lookup(&mut self, l: &LookupU) -> u32 {
        if let Some(&slot) = self.lookup_memo.get(l) {
            return slot;
        }
        let slot = match l {
            LookupU::Var(v) => {
                let dst = self.new_slot();
                self.ops.push(Op::Input { dst, var: *v });
                dst
            }
            LookupU::Select { col, table, cond } => {
                // Condition values first, in predicate order — the
                // interpreter resolves them in this order, and their
                // undefs must fire before the probe.
                let conds: Vec<(ColId, CondVal)> = cond
                    .iter()
                    .map(|p| {
                        let val = match &p.rhs {
                            PredRhsU::Const(s) => CondVal::Sym(Symbol::intern(s)),
                            PredRhsU::Expr(e) => CondVal::Slot(self.lower_expr(e)),
                        };
                        (p.col, val)
                    })
                    .collect();
                let dst = self.new_slot();
                let t = self.db.table(*table);
                let all_const = conds.iter().all(|(_, v)| matches!(v, CondVal::Sym(_)));
                if all_const {
                    // Every condition is constant: the probe yields the
                    // same cell on every row — resolve it now.
                    let resolved: Vec<(ColId, Symbol)> = conds
                        .iter()
                        .map(|(c, v)| match v {
                            CondVal::Sym(s) => (*c, *s),
                            CondVal::Slot(_) => unreachable!("all_const"),
                        })
                        .collect();
                    let cell = match t.find_unique_row_sym(&resolved) {
                        Some(r) => t.cell(*col, r),
                        None => "",
                    };
                    self.ops.push(Op::Cell { dst, cell });
                } else if let [(ccol, CondVal::Slot(slot))] = conds.as_slice() {
                    // One runtime condition: pre-resolve the whole table
                    // into a `value → cell` map. A value matching exactly
                    // one row maps to that row's output cell; everything
                    // else (never-interned values, postings misses,
                    // ambiguous values) is absent and yields `""` — the
                    // same partition `Symbol::get` + `find_unique_row_sym`
                    // computes per row.
                    let mut uniq: HashMap<Symbol, Option<u32>> = HashMap::new();
                    for r in t.row_ids() {
                        uniq.entry(t.cell_sym(*ccol, r))
                            .and_modify(|e| *e = None)
                            .or_insert(Some(r));
                    }
                    let map: ProbeMap = uniq
                        .into_iter()
                        .filter_map(|(sym, r)| r.map(|r| (sym.as_str(), t.cell(*col, r))))
                        .collect();
                    self.ops.push(Op::Probe1 {
                        dst,
                        slot: *slot,
                        map: Arc::new(map),
                    });
                } else {
                    self.ops.push(Op::Probe {
                        dst,
                        table: *table,
                        col: *col,
                        conds: conds.into_boxed_slice(),
                    });
                }
                dst
            }
        };
        self.lookup_memo.insert(l.clone(), slot);
        slot
    }

    fn runs_for(&mut self, src: u32) -> u32 {
        if let Some(&r) = self.runs_memo.get(&src) {
            return r;
        }
        let r = self.n_runs;
        self.n_runs += 1;
        self.ops.push(Op::Runs { runs: r, src });
        self.runs_memo.insert(src, r);
        r
    }

    fn pos_for(&mut self, runs: u32, pos: CompiledPos) -> u32 {
        if let Some(&p) = self.pos_memo.get(&(runs, pos.clone())) {
            return p;
        }
        let dst = self.n_pos;
        self.n_pos += 1;
        self.ops.push(Op::Pos {
            dst,
            runs,
            pos: pos.clone(),
        });
        self.pos_memo.insert((runs, pos), dst);
        dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_sem;
    use crate::language::PredicateU;
    use sst_syntactic::{PosExpr, RegexSeq, Token};
    use sst_tables::Table;

    fn tokens() -> TokenSet {
        TokenSet::standard()
    }

    fn bike_db() -> Arc<Database> {
        Arc::new(
            Database::from_tables(vec![Table::new(
                "BikePrices",
                vec!["Bike", "Price"],
                vec![
                    vec!["Ducati100", "10,000"],
                    vec!["Ducati125", "12,500"],
                    vec!["Honda125", "11,500"],
                ],
            )
            .unwrap()])
            .unwrap(),
        )
    }

    /// Differential check against the interpreter on one expression/row.
    fn assert_equiv(expr: &SemExpr, db: &Arc<Database>, rows: &[Vec<&str>]) {
        let compiled = CompiledProgram::lower(expr, Arc::clone(db), &tokens());
        let mut scratch = compiled.new_scratch();
        for row in rows {
            let expected = eval_sem(expr, db, row, &tokens());
            assert_eq!(
                compiled.run_row_with(row, &mut scratch).map(str::to_string),
                expected,
                "row {row:?} of {expr}"
            );
            assert_eq!(compiled.run_row(row), expected);
        }
    }

    #[test]
    fn concat_indexed_lookup_matches_interpreter() {
        // Example 5: Select(Price, BikePrices, Bike = Concatenate(v1, v2)).
        let db = bike_db();
        let expr = SemExpr::atom(AtomicExpr::Whole(LookupU::Select {
            col: 1,
            table: 0,
            cond: vec![PredicateU {
                col: 0,
                rhs: PredRhsU::Expr(SemExpr {
                    atoms: vec![
                        AtomicExpr::Whole(LookupU::Var(0)),
                        AtomicExpr::Whole(LookupU::Var(1)),
                    ],
                }),
            }],
        }));
        assert_equiv(
            &expr,
            &db,
            &[
                vec!["Ducati", "125"],
                vec!["Honda", "125"],
                vec!["Yamaha", "50"], // lookup miss: empty string
                vec!["Ducati"],       // missing variable: undefined
                vec![],
            ],
        );
    }

    #[test]
    fn substr_and_const_matches_interpreter() {
        let db = bike_db();
        let word = |i: i32| AtomicExpr::SubStr {
            src: LookupU::Var(0),
            p1: PosExpr::Pos {
                r1: RegexSeq::epsilon(),
                r2: RegexSeq::token(Token::AlphNum),
                c: i,
            },
            p2: PosExpr::Pos {
                r1: RegexSeq::token(Token::AlphNum),
                r2: RegexSeq::epsilon(),
                c: i,
            },
        };
        let expr = SemExpr {
            atoms: vec![
                word(2),
                AtomicExpr::ConstStr(" ··· ".into()),
                word(1),
                AtomicExpr::ConstStr(" ··· ".into()),
                word(2),
            ],
        };
        assert_equiv(
            &expr,
            &db,
            &[
                vec!["Alan Turing"],
                vec!["héllo wörld"],
                vec!["single"], // second word undefined
                vec![""],
                vec!["  spaced  out  "],
            ],
        );
    }

    #[test]
    fn compile_time_interned_const_cond_misses_like_interpreter() {
        let db = bike_db();
        // The constant was never a cell value: both paths must yield the
        // miss semantics (empty string), not undefined.
        let expr = SemExpr::atom(AtomicExpr::Whole(LookupU::Select {
            col: 1,
            table: 0,
            cond: vec![PredicateU {
                col: 0,
                rhs: PredRhsU::Const("NotABike".into()),
            }],
        }));
        assert_equiv(&expr, &db, &[vec![]]);
        let compiled = CompiledProgram::lower(&expr, Arc::clone(&db), &tokens());
        assert_eq!(compiled.run_row::<&str>(&[]).as_deref(), Some(""));
    }

    #[test]
    fn crossed_and_oob_positions_are_undefined() {
        let db = bike_db();
        let crossed = SemExpr::atom(AtomicExpr::SubStr {
            src: LookupU::Var(0),
            p1: PosExpr::CPos(-1),
            p2: PosExpr::CPos(0),
        });
        let oob = SemExpr::atom(AtomicExpr::SubStr {
            src: LookupU::Var(0),
            p1: PosExpr::CPos(7),
            p2: PosExpr::CPos(9),
        });
        assert_equiv(&crossed, &db, &[vec!["ab"], vec![""]]);
        assert_equiv(&oob, &db, &[vec!["ab"], vec!["long enough str"]]);
    }

    #[test]
    fn cse_shares_subexpressions() {
        let db = bike_db();
        let word = AtomicExpr::SubStr {
            src: LookupU::Var(0),
            p1: PosExpr::Pos {
                r1: RegexSeq::epsilon(),
                r2: RegexSeq::token(Token::AlphNum),
                c: 1,
            },
            p2: PosExpr::Pos {
                r1: RegexSeq::token(Token::AlphNum),
                r2: RegexSeq::epsilon(),
                c: 1,
            },
        };
        let expr = SemExpr {
            atoms: vec![word.clone(), word.clone(), word],
        };
        let compiled = CompiledProgram::lower(&expr, Arc::clone(&db), &tokens());
        // One Input, one Runs, two Pos, one Extract — the repeats reuse it.
        assert_eq!(compiled.op_count(), 5);
        assert_equiv(&expr, &db, &[vec!["Alan Turing"], vec![" x "]]);
    }

    #[test]
    fn run_column_preserves_order_and_width_independence() {
        let db = bike_db();
        let expr = SemExpr {
            atoms: vec![
                AtomicExpr::Whole(LookupU::Var(0)),
                AtomicExpr::ConstStr("-".into()),
                AtomicExpr::Whole(LookupU::Select {
                    col: 1,
                    table: 0,
                    cond: vec![PredicateU {
                        col: 0,
                        rhs: PredRhsU::Expr(SemExpr::atom(AtomicExpr::Whole(LookupU::Var(0)))),
                    }],
                }),
            ],
        };
        let compiled = CompiledProgram::lower(&expr, Arc::clone(&db), &tokens());
        let rows: Vec<Vec<String>> = (0..5000)
            .map(|i| {
                vec![match i % 3 {
                    0 => "Ducati125".to_string(),
                    1 => "Honda125".to_string(),
                    _ => format!("Unknown{i}"),
                }]
            })
            .collect();
        let expected: Vec<Option<String>> = rows
            .iter()
            .map(|row| {
                let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                eval_sem(&expr, &db, &refs, &tokens())
            })
            .collect();
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            assert_eq!(
                compiled.run_column(&rows, &pool),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn token_plan_is_a_small_subset() {
        let db = bike_db();
        let expr = SemExpr::atom(AtomicExpr::SubStr {
            src: LookupU::Var(0),
            p1: PosExpr::Pos {
                r1: RegexSeq::epsilon(),
                r2: RegexSeq::token(Token::Num),
                c: 1,
            },
            p2: PosExpr::Pos {
                r1: RegexSeq::token(Token::Num),
                r2: RegexSeq::epsilon(),
                c: -1,
            },
        });
        let compiled = CompiledProgram::lower(&expr, Arc::clone(&db), &tokens());
        assert_eq!(compiled.token_count(), 1);
        assert_equiv(&expr, &db, &[vec!["ab12cd34"], vec!["no digits"]]);
    }
}
