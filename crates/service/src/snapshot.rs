//! Engine snapshot persistence: learn once, answer warm anywhere.
//!
//! A snapshot file is one [`sst_arena::codec`] frame whose payload is:
//!
//! ```text
//! u64 options-fingerprint · symbol table · database · cache (arena + memos)
//! ```
//!
//! The fingerprint hashes the engine's *generation-relevant* options
//! ([`sst_core::LuOptions`], via its `Debug` rendering): cache entries are
//! only sound across equal generation options, so a restore into an
//! engine configured differently must fail typed instead of silently
//! serving memo entries another configuration produced. Ranking weights,
//! pool width and `top_k` are deliberately outside the fingerprint — they
//! shape ranking and scheduling, not the memoized structures.
//!
//! Writes go through a sibling temp file plus `rename`, so a crash
//! mid-snapshot never leaves a torn file at the configured path (the
//! frame checksum would catch one anyway — this keeps the *previous*
//! snapshot intact too).

use std::path::Path;
use std::sync::Arc;

use sst_arena::{open_snapshot, seal_snapshot, Reader, SymDecoder, SymEncoder, Writer};
use sst_core::{DagCache, SynthesisOptions};
use sst_tables::Database;

use crate::types::ServiceError;

/// FNV-1a hash of the generation-relevant options (`options.lu`, which
/// pins depth bounds, syntactic generation parameters and the substring
/// gate — everything a memoized structure depends on).
pub(crate) fn options_fingerprint(options: &SynthesisOptions) -> u64 {
    let repr = format!("{:?}", options.lu);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in repr.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes database + cache into a sealed snapshot and writes it to
/// `path` (temp file + rename). Returns the file size in bytes.
pub(crate) fn write_snapshot(
    path: &Path,
    db: &Database,
    cache: &DagCache,
    options: &SynthesisOptions,
) -> Result<u64, ServiceError> {
    let mut body = Writer::new();
    let mut sym = SymEncoder::new();
    sst_arena::encode_database(db, &mut body, &mut sym);
    cache.encode_snapshot(&mut body, &mut sym);
    let mut payload = Writer::new();
    payload.u64(options_fingerprint(options));
    sym.write_table(&mut payload);
    let body = body.into_bytes();
    payload.raw(&body);
    let sealed = seal_snapshot(&payload.into_bytes());

    let tmp = match path.file_name() {
        Some(name) => {
            let mut tmp_name = name.to_os_string();
            tmp_name.push(".tmp");
            path.with_file_name(tmp_name)
        }
        None => {
            return Err(ServiceError::Snapshot(format!(
                "invalid snapshot path {}",
                path.display()
            )))
        }
    };
    std::fs::write(&tmp, &sealed)
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| ServiceError::Snapshot(format!("writing {}: {e}", path.display())))?;
    Ok(sealed.len() as u64)
}

/// Reads and fully validates a snapshot written by [`write_snapshot`],
/// refusing one taken under different generation options. The restored
/// database draws fresh process-local epochs and the cache binds to them.
pub(crate) fn read_snapshot(
    path: &Path,
    options: &SynthesisOptions,
) -> Result<(Arc<Database>, DagCache), ServiceError> {
    let bytes = std::fs::read(path)
        .map_err(|e| ServiceError::Snapshot(format!("reading {}: {e}", path.display())))?;
    let payload = open_snapshot(&bytes)?;
    let mut r = Reader::new(payload);
    let fingerprint = r.u64()?;
    if fingerprint != options_fingerprint(options) {
        return Err(ServiceError::Snapshot(
            "options fingerprint mismatch: the snapshot was taken under different \
             generation options, its memo entries would be unsound here"
                .into(),
        ));
    }
    let sym = SymDecoder::read_table(&mut r)?;
    let db = sst_arena::decode_database(&mut r, &sym)?;
    let cache = DagCache::decode_snapshot(&mut r, &sym, db.epoch())?;
    r.expect_end()?;
    Ok((Arc::new(db), cache))
}
