//! Figure 11(a): number of expressions consistent with the provided
//! examples, per benchmark (paper: typically 10^10 to 10^30).

use sst_bench::evaluate_suite;

fn main() {
    let reports = evaluate_suite();
    println!("== Fig 11(a): consistent-expression counts ==");
    println!(
        "{:<4} {:<28} {:>9} {:>14}",
        "id", "task", "examples", "count"
    );
    let mut logs: Vec<f64> = Vec::new();
    for r in &reports {
        println!(
            "{:<4} {:<28} {:>9} {:>14}",
            r.id,
            r.name,
            r.examples_used,
            r.count.to_scientific()
        );
        logs.push(r.count.log10());
    }
    logs.sort_by(|a, b| a.total_cmp(b));
    println!();
    println!(
        "log10 count: min {:.1}, median {:.1}, max {:.1}",
        logs.first().copied().unwrap_or(0.0),
        logs[logs.len() / 2],
        logs.last().copied().unwrap_or(0.0)
    );
}
