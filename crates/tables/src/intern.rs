//! Global string interner: the workspace's interned value plane.
//!
//! Every cell value, example string and reachability-frontier value is
//! interned once into a process-global table and represented thereafter by a
//! [`Symbol`] — a `u32` id. The synthesis hot path (`GenerateStr_t`'s
//! frontier probes, `ValueIndex` lookups, node-map keys, predicate
//! constants) then works entirely on symbols: equality is an integer
//! compare, hashing is one multiply, and no per-probe `String` is ever
//! allocated. Interned strings live for the process lifetime — the set is
//! bounded by the database contents plus the example strings, which is
//! exactly the working set the synthesizer touches anyway.
//!
//! # Sharding and the lock-free resolve path
//!
//! The interner is **sharded**: a string's bytes hash (FNV-1a, independent
//! of any map hasher) picks one of [`SHARDS`] shards, and a symbol id
//! encodes its shard in the low [`SHARD_BITS`] bits with the slab index
//! above them. Concurrent `intern`/`get` calls for different values
//! therefore take different locks with probability `1 - 1/SHARDS`, and the
//! multi-threaded `Intersect_u` plane never funnels through one global
//! `RwLock` (the pre-shard design).
//!
//! Resolution ([`Symbol::as_str`]) takes **no lock at all**: each shard
//! stores its strings in an append-only slab of doubling buckets. A bucket
//! pointer is published with `Release` once allocated, and the shard's
//! entry count is bumped with `Release` only *after* the new entry is
//! written, so a reader that `Acquire`-loads the count and then reads an
//! entry below it observes a fully written `&'static str`. Entries are
//! never moved or freed, which is what makes the unsynchronized entry read
//! sound.
//!
//! `Symbol(0)` is always the empty string, so emptiness tests need no
//! resolution. Symbol ids are **not** ordered by interning time (the shard
//! lives in the low bits); `Ord` exists for use in ordered containers and
//! is stable within a process, nothing more — sort resolved strings when
//! presentation order matters.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};
use std::sync::{OnceLock, RwLock};

/// Number of low bits of a symbol id that name its shard.
const SHARD_BITS: u32 = 4;

/// Number of interner shards.
const SHARDS: usize = 1 << SHARD_BITS;

/// Buckets per shard slab: bucket `b` holds `BUCKET0 << b` entries, so 26
/// buckets cover far more strings than a `u32` id space can name.
const SLAB_BUCKETS: usize = 26;

/// Capacity of the first slab bucket.
const BUCKET0: u32 = 64;

/// An interned string: a `u32` id into the process-global sharded interner
/// (shard in the low bits, per-shard slab index above).
///
/// Equal symbols ⇔ equal strings. `Ord` is arbitrary but fixed within a
/// process (shard interleaving breaks interning order) — sort resolved
/// strings when presentation order matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

/// One interner shard: the insert-side map plus the lock-free resolve slab.
struct Shard {
    /// String → full symbol id. Read-locked on probe, write-locked only on
    /// first-time inserts.
    map: RwLock<HashMap<&'static str, u32>>,
    /// Append-only bucket pointers; each is a leaked `[&'static str]` of
    /// `BUCKET0 << b` entries, published once with `Release`.
    buckets: [AtomicPtr<&'static str>; SLAB_BUCKETS],
    /// Number of published entries. Bumped with `Release` after the entry
    /// write; `Acquire` loads make those writes visible to readers.
    len: AtomicU32,
}

impl Shard {
    fn empty() -> Shard {
        Shard {
            map: RwLock::new(HashMap::with_capacity(64)),
            buckets: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            len: AtomicU32::new(0),
        }
    }

    /// Bucket index and in-bucket offset of slab index `i`.
    fn locate(i: u32) -> (usize, usize) {
        let b = (i / BUCKET0 + 1).ilog2() as usize;
        let start = BUCKET0 * ((1u32 << b) - 1);
        (b, (i - start) as usize)
    }

    /// Appends `s`, returning its slab index. Caller must hold the shard's
    /// map write lock (single writer per shard).
    fn push(&self, s: &'static str) -> u32 {
        let i = self.len.load(Ordering::Relaxed);
        let (b, off) = Shard::locate(i);
        let mut ptr = self.buckets[b].load(Ordering::Acquire);
        if ptr.is_null() {
            // Allocate the bucket, placeholder-filled so every slot is a
            // valid (if meaningless) `&str` before publication.
            let cap = (BUCKET0 << b) as usize;
            let slab: Box<[&'static str]> = vec![""; cap].into_boxed_slice();
            ptr = Box::leak(slab).as_mut_ptr();
            self.buckets[b].store(ptr, Ordering::Release);
        }
        // SAFETY: `off < BUCKET0 << b` by construction; this slot is above
        // the published `len`, so no reader accesses it until the `Release`
        // store below, and the map write lock serializes writers.
        unsafe { ptr.add(off).write(s) };
        self.len.store(i + 1, Ordering::Release);
        i
    }

    /// Resolves slab index `i`, lock-free.
    fn resolve(&self, i: u32) -> &'static str {
        assert!(
            i < self.len.load(Ordering::Acquire),
            "symbol index {i} was never interned"
        );
        let (b, off) = Shard::locate(i);
        let ptr = self.buckets[b].load(Ordering::Acquire);
        // SAFETY: `i < len` implies the bucket was published and the entry
        // written before the `Release` bump the `Acquire` above observed;
        // entries are immutable and never freed.
        unsafe { *ptr.add(off) }
    }
}

fn shards() -> &'static [Shard; SHARDS] {
    static INTERNER: OnceLock<[Shard; SHARDS]> = OnceLock::new();
    INTERNER.get_or_init(|| {
        let shards: [Shard; SHARDS] = std::array::from_fn(|_| Shard::empty());
        // Pre-seed shard 0's slab so `Symbol(0)` resolves to "". The empty
        // string is special-cased before hashing in `intern`/`get`, so no
        // map entry is needed.
        shards[0].push("");
        shards
    })
}

/// FNV-1a over the string bytes: the shard selector. Deliberately distinct
/// from the map hasher so a pathological value set cannot align shard and
/// bucket collisions.
fn shard_of(s: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // Fold the high half in: FNV's low bits are weak for short keys.
    ((h ^ (h >> 32)) as usize) & (SHARDS - 1)
}

impl Symbol {
    /// The interned empty string.
    pub const EMPTY: Symbol = Symbol(0);

    /// Interns `s`, returning its symbol (idempotent).
    pub fn intern(s: &str) -> Symbol {
        if s.is_empty() {
            return Symbol::EMPTY;
        }
        let shard_idx = shard_of(s);
        let shard = &shards()[shard_idx];
        {
            let map = shard.map.read().expect("interner poisoned");
            if let Some(&id) = map.get(s) {
                return Symbol(id);
            }
        }
        let mut map = shard.map.write().expect("interner poisoned");
        if let Some(&id) = map.get(s) {
            return Symbol(id); // raced: someone interned between locks
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        let slab_idx = shard.push(leaked);
        let id = (slab_idx << SHARD_BITS) | shard_idx as u32;
        map.insert(leaked, id);
        Symbol(id)
    }

    /// Looks `s` up without interning; `None` when never interned. Use for
    /// probe values that should not grow the intern table. Takes only the
    /// owning shard's read lock.
    pub fn get(s: &str) -> Option<Symbol> {
        if s.is_empty() {
            return Some(Symbol::EMPTY);
        }
        shards()[shard_of(s)]
            .map
            .read()
            .expect("interner poisoned")
            .get(s)
            .map(|&id| Symbol(id))
    }

    /// The interned string. Lock-free: one `Acquire` load of the shard
    /// length, one of the bucket pointer, then a plain read.
    pub fn as_str(self) -> &'static str {
        shards()[(self.0 as usize) & (SHARDS - 1)].resolve(self.0 >> SHARD_BITS)
    }

    /// The raw id.
    pub fn id(self) -> u32 {
        self.0
    }

    /// True iff this is the empty string (no resolution needed).
    pub fn is_empty(self) -> bool {
        self == Symbol::EMPTY
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

/// Multiply-xor hasher for small integer keys ([`Symbol`], node-id pairs).
/// One multiply per word beats SipHash on the synthesis hot path; symbols
/// are attacker-free internal ids, so DoS hardening is not needed.
#[derive(Debug, Default, Clone, Copy)]
pub struct IntHasher(u64);

const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for IntHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer fields; rarely used on the hot path.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(SEED).rotate_left(23);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    fn write_u64(&mut self, v: u64) {
        let x = (self.0.rotate_left(29) ^ v).wrapping_mul(SEED);
        self.0 = x ^ (x >> 32);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `HashMap` keyed by integer-like keys via [`IntHasher`].
pub type IntMap<K, V> = HashMap<K, V, BuildHasherDefault<IntHasher>>;

/// `HashMap` from [`Symbol`]s, the common case.
pub type SymbolMap<V> = IntMap<Symbol, V>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_equal_by_content() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        let c = Symbol::intern("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "hello");
        assert_eq!(c.as_str(), "world");
    }

    #[test]
    fn empty_symbol_is_reserved() {
        assert_eq!(Symbol::intern(""), Symbol::EMPTY);
        assert!(Symbol::EMPTY.is_empty());
        assert!(!Symbol::intern("x").is_empty());
        assert_eq!(Symbol::EMPTY.as_str(), "");
        assert_eq!(Symbol::get(""), Some(Symbol::EMPTY));
    }

    #[test]
    fn get_does_not_intern() {
        assert_eq!(Symbol::get("never-interned-probe-q7x"), None);
        let s = Symbol::intern("interned-once-q7x");
        assert_eq!(Symbol::get("interned-once-q7x"), Some(s));
    }

    #[test]
    fn display_and_conversions() {
        let s: Symbol = "conv".into();
        assert_eq!(s.to_string(), "conv");
        let t: Symbol = String::from("conv").into();
        assert_eq!(s, t);
    }

    #[test]
    fn symbol_map_round_trips() {
        let mut m: SymbolMap<u32> = SymbolMap::default();
        for i in 0..100u32 {
            m.insert(Symbol::intern(&format!("k{i}")), i);
        }
        for i in 0..100u32 {
            assert_eq!(m.get(&Symbol::intern(&format!("k{i}"))), Some(&i));
        }
    }

    #[test]
    fn slab_locate_covers_bucket_boundaries() {
        assert_eq!(Shard::locate(0), (0, 0));
        assert_eq!(Shard::locate(BUCKET0 - 1), (0, (BUCKET0 - 1) as usize));
        assert_eq!(Shard::locate(BUCKET0), (1, 0));
        assert_eq!(
            Shard::locate(3 * BUCKET0 - 1),
            (1, (2 * BUCKET0 - 1) as usize)
        );
        assert_eq!(Shard::locate(3 * BUCKET0), (2, 0));
    }

    #[test]
    fn deep_slab_growth_round_trips() {
        // Cross several bucket boundaries in one shard-agnostic sweep.
        let symbols: Vec<Symbol> = (0..3000)
            .map(|i| Symbol::intern(&format!("growth-{i}")))
            .collect();
        for (i, s) in symbols.iter().enumerate() {
            assert_eq!(s.as_str(), format!("growth-{i}"));
        }
        // Distinct strings, distinct symbols — across shard boundaries too.
        let mut ids: Vec<u32> = symbols.iter().map(|s| s.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), symbols.len());
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..200)
                        .map(|i| Symbol::intern(&format!("t{i}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn concurrent_intern_and_resolve() {
        // Writers keep interning fresh values while readers resolve
        // already-published ones: the lock-free resolve path must always
        // observe fully written entries.
        let seed: Vec<Symbol> = (0..256)
            .map(|i| Symbol::intern(&format!("seeded-{i}")))
            .collect();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let seed = seed.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let s = Symbol::intern(&format!("mixed-{t}-{i}"));
                        assert_eq!(s.as_str(), format!("mixed-{t}-{i}"));
                        let probe = &seed[(i * 7 + t) % seed.len()];
                        assert_eq!(
                            probe.as_str(),
                            format!("seeded-{}", (i * 7 + t) % seed.len())
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
