//! Gate-parameterized forward-reachability engine.
//!
//! Both synthesis layers run the same iteration shape (Fig. 5a and its §5.3
//! relaxation): seed one node per distinct input value, then repeat up to
//! `k` times — find table rows *activated* by the current frontier,
//! materialize nodes for the activated rows' cells, and attach a
//! generalized `Select` (conditions shared per row behind an `Arc`) to
//! every column not reached directly. The layers differ only in their
//! *gate* — what activates a row — and in the condition language:
//!
//! * the **exact** gate (`GenerateStr_t`) activates a row when a frontier
//!   value *equals* one of its cells, answered by
//!   [`sst_tables::ValueIndex`] via [`Database::cells_equal`], with
//!   constant-or-node predicates;
//! * the **relaxed** gate (`GenerateStr_u`, `sst-core`) activates a cell
//!   when it is substring-related to a frontier value *and* syntactically
//!   assemblable from the known strings, answered by
//!   [`sst_tables::SubstringIndex`] via `Database::cells_related_to`, with
//!   nested-DAG predicates.
//!
//! The engine owns everything the two hand-rolled loops used to duplicate:
//! the frontier queue, the `val_to_node` interning map, the two-pass row
//! activation (materialize all nodes first so same-step key columns are
//! node-referenced, then build conditions), and hash-indexed program
//! deduplication ([`ProgSet`]). A [`ReachPolicy`] supplies the gate and the
//! program/condition types; `reach` drives the fixpoint. Node ids, program
//! order and sharing are bit-for-bit what the two standalone loops
//! produced — the `tests/intern_equivalence.rs` pins hold across the
//! refactor.

use std::hash::Hash;

use sst_tables::{ColId, Database, ProgSet, RowId, Symbol, SymbolMap, TableId};

use crate::dstruct::NodeId;

/// One activated row within a reachability step: the row plus the columns
/// the gate hit directly. Hit columns never receive a `Select` (they were
/// reached another way); whether they still materialize nodes is the
/// policy's [`ReachPolicy::MATERIALIZE_HITS`].
#[derive(Debug, Clone)]
pub struct Activation {
    /// Owning table.
    pub table: TableId,
    /// Activated row.
    pub row: RowId,
    /// Columns the gate reached directly (exact layer: every matched
    /// column of the row; relaxed layer: the single assembled cell).
    pub hit_cols: Vec<ColId>,
}

/// The engine's node store: one node per distinct reachable value, with
/// hash-deduplicated generalized programs in insertion order.
#[derive(Debug, Clone)]
pub struct ReachState<P> {
    nodes: Vec<(Symbol, ProgSet<P>)>,
    val_to_node: SymbolMap<NodeId>,
}

impl<P> Default for ReachState<P> {
    fn default() -> Self {
        ReachState {
            nodes: Vec::new(),
            val_to_node: SymbolMap::default(),
        }
    }
}

impl<P: Hash + Eq> ReachState<P> {
    /// The value of a node.
    pub fn val(&self, node: NodeId) -> Symbol {
        self.nodes[node.0 as usize].0
    }

    /// The node holding `val`, if reached.
    pub fn node_of(&self, val: Symbol) -> Option<NodeId> {
        self.val_to_node.get(&val).copied()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff no node was reached.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates `(node, value)` in node-id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Symbol)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, (val, _))| (NodeId(i as u32), *val))
    }

    /// The node values in node-id order — the content identity of the
    /// σ ∪ η̃ snapshot. Because nodes are append-only and never re-valued,
    /// this list is a *prefix-stable epoch key*: gates that extend a
    /// [`sst_syntactic::PreparedSources`] snapshot incrementally
    /// (`PreparedSources::extend`) can intern it (e.g. into a `DagCache`
    /// sources epoch upstream) and equal keys guarantee byte-identical
    /// prepared sources.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.nodes.iter().map(|(val, _)| *val)
    }

    /// Consumes the state into `(value, programs)` pairs in node-id order.
    pub fn into_nodes(self) -> Vec<(Symbol, ProgSet<P>)> {
        self.nodes
    }

    fn get_or_create(&mut self, val: Symbol) -> (NodeId, bool) {
        if let Some(&id) = self.val_to_node.get(&val) {
            return (id, false);
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push((val, ProgSet::new()));
        self.val_to_node.insert(val, id);
        (id, true)
    }

    fn insert_prog(&mut self, node: NodeId, prog: P) {
        self.nodes[node.0 as usize].1.insert(prog);
    }
}

/// A reachability gate plus its layer's program and condition languages.
///
/// The policy is stateful across one step: [`ReachPolicy::activations`]
/// runs first and may stash per-step context (the relaxed layer keeps its
/// prepared σ ∪ η̃ snapshot there) that [`ReachPolicy::conds`] consumes.
pub trait ReachPolicy {
    /// Generalized program stored at each node.
    type Prog: Hash + Eq;
    /// Shared per-row condition handle (typically `Arc<Vec<_>>`).
    type Conds;

    /// Whether empty example inputs still seed (empty-valued) nodes. The
    /// exact layer does (its frontier probe skips them); the relaxed layer
    /// drops them up front.
    const SEED_EMPTY_INPUTS: bool;

    /// Whether hit columns also materialize nodes. The exact layer's
    /// matched cells are themselves reachable strings; the relaxed layer's
    /// assembled cell is *not* a lookup output, so it only becomes a node
    /// if some other activation reaches it.
    const MATERIALIZE_HITS: bool;

    /// Program denoting input variable `var`.
    fn var_prog(&self, var: u32) -> Self::Prog;

    /// Appends this step's activations to `out`, in the order both passes
    /// visit them (the order must be deterministic — sort before pushing).
    fn activations(
        &mut self,
        db: &Database,
        state: &ReachState<Self::Prog>,
        frontier: &[NodeId],
        out: &mut Vec<Activation>,
    );

    /// Builds the shared condition handle for one activation; `None` skips
    /// `Select` attachment (e.g. a table without candidate keys).
    fn conds(
        &mut self,
        db: &Database,
        state: &ReachState<Self::Prog>,
        act: &Activation,
    ) -> Option<Self::Conds>;

    /// The generalized `Select` projecting `col` of the activated row.
    fn select_prog(&self, act: &Activation, col: ColId, conds: &Self::Conds) -> Self::Prog;
}

/// Runs forward reachability for up to `k` steps and returns the node
/// store. The loop also stops at the fixpoint (empty frontier), making the
/// procedure sound and `k`-complete regardless of gate.
pub fn reach<P: ReachPolicy>(
    db: &Database,
    inputs: &[&str],
    k: usize,
    policy: &mut P,
) -> ReachState<P::Prog> {
    let mut state = ReachState::default();

    // Base case: one node per distinct input value.
    let mut frontier: Vec<NodeId> = Vec::new();
    for (i, value) in inputs.iter().enumerate() {
        if !P::SEED_EMPTY_INPUTS && value.is_empty() {
            continue;
        }
        let (node, is_new) = state.get_or_create(Symbol::intern(value));
        state.insert_prog(node, policy.var_prog(i as u32));
        if is_new {
            frontier.push(node);
        }
    }

    let mut activations: Vec<Activation> = Vec::new();
    for _step in 0..k {
        if frontier.is_empty() {
            break;
        }
        activations.clear();
        policy.activations(db, &state, &frontier, &mut activations);

        // Pass 1: materialize nodes for the activated rows' cells, so that
        // key columns reached in the same step are node-referenced when
        // conditions are built below (see crate::generate's module note).
        let mut next_frontier: Vec<NodeId> = Vec::new();
        for act in &activations {
            let table = db.table(act.table);
            for col in 0..table.width() as ColId {
                if !P::MATERIALIZE_HITS && act.hit_cols.contains(&col) {
                    continue;
                }
                let value = table.cell_sym(col, act.row);
                if value.is_empty() {
                    continue;
                }
                let (node, is_new) = state.get_or_create(value);
                if is_new {
                    next_frontier.push(node);
                }
            }
        }

        // Pass 2: build the shared condition handle once per activation and
        // attach Selects to every non-hit column.
        for act in &activations {
            let Some(conds) = policy.conds(db, &state, act) else {
                continue;
            };
            let table = db.table(act.table);
            for col in 0..table.width() as ColId {
                if act.hit_cols.contains(&col) {
                    continue;
                }
                let value = table.cell_sym(col, act.row);
                if value.is_empty() {
                    continue;
                }
                let node = state
                    .node_of(value)
                    .expect("pass 1 materialized every non-empty cell");
                let prog = policy.select_prog(act, col, &conds);
                state.insert_prog(node, prog);
            }
        }
        frontier = next_frontier;
    }
    state
}
