//! Currency background knowledge.

use sst_tables::Table;

/// Builds the `Currency` table: ISO code ↔ symbol ↔ currency name ↔ major
/// country. `Code` and `Name` are candidate keys (symbols repeat: `$`).
pub fn currency_table() -> Table {
    const ROWS: [[&str; 4]; 14] = [
        ["USD", "$", "US Dollar", "United States"],
        ["EUR", "€", "Euro", "Eurozone"],
        ["GBP", "£", "Pound Sterling", "United Kingdom"],
        ["JPY", "¥", "Yen", "Japan"],
        ["CHF", "Fr", "Swiss Franc", "Switzerland"],
        ["CAD", "C$", "Canadian Dollar", "Canada"],
        ["AUD", "A$", "Australian Dollar", "Australia"],
        ["INR", "₹", "Indian Rupee", "India"],
        ["CNY", "元", "Renminbi", "China"],
        ["TRY", "₺", "Turkish Lira", "Turkey"],
        ["BRL", "R$", "Real", "Brazil"],
        ["MXN", "Mex$", "Mexican Peso", "Mexico"],
        ["SEK", "kr", "Swedish Krona", "Sweden"],
        ["ZAR", "R", "Rand", "South Africa"],
    ];
    let rows: Vec<Vec<String>> = ROWS
        .iter()
        .map(|r| r.iter().map(|s| s.to_string()).collect())
        .collect();
    Table::with_keys(
        "Currency",
        vec!["Code", "Symbol", "Name", "Country"],
        rows,
        vec![vec!["Code"], vec!["Name"], vec!["Country"]],
    )
    .expect("Currency table is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_to_symbol() {
        let t = currency_table();
        let row = t.find_unique_row(&[(0, "GBP")]).unwrap();
        assert_eq!(t.cell(1, row), "£");
        assert_eq!(t.cell(3, row), "United Kingdom");
    }

    #[test]
    fn symbol_is_not_a_key() {
        let t = currency_table();
        // `$`-like symbols repeat across rows, so Symbol must not be
        // declared a key; Code/Name/Country are.
        assert_eq!(t.candidate_keys(), &[vec![0], vec![2], vec![3]]);
    }
}
