//! The `Time` table of paper Example 7.

use sst_tables::Table;

/// Builds the `Time` table: 24 rows mapping the 24-hour clock to the
/// 12-hour clock with AM/PM. The paper declares two candidate keys:
/// `24Hour` alone, and `(12Hour, AMPM)` together.
///
/// Rows are `(0, 12, AM), (1, 1, AM), ..., (12, 12, PM), (13, 1, PM), ...`.
/// (The paper's row list starts `(0, 0, AM)`; we use the conventional
/// `12 AM` for midnight so that looked-up strings match real spreadsheet
/// data, and keep `(12Hour, AMPM)` a key either way.)
pub fn time_table() -> Table {
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(24);
    for h in 0..24u32 {
        let h12 = match h % 12 {
            0 => 12,
            other => other,
        };
        let ampm = if h < 12 { "AM" } else { "PM" };
        rows.push(vec![h.to_string(), h12.to_string(), ampm.to_string()]);
    }
    Table::with_keys(
        "Time",
        vec!["24Hour", "12Hour", "AMPM"],
        rows,
        vec![vec!["24Hour"], vec!["12Hour", "AMPM"]],
    )
    .expect("Time table is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_24_rows_and_declared_keys() {
        let t = time_table();
        assert_eq!(t.len(), 24);
        assert_eq!(t.candidate_keys(), &[vec![0], vec![1, 2]]);
    }

    #[test]
    fn midnight_noon_and_afternoon() {
        let t = time_table();
        let row = t.find_unique_row(&[(0, "0")]).unwrap();
        assert_eq!(t.cell(1, row), "12");
        assert_eq!(t.cell(2, row), "AM");
        let row = t.find_unique_row(&[(0, "12")]).unwrap();
        assert_eq!(t.cell(1, row), "12");
        assert_eq!(t.cell(2, row), "PM");
        let row = t.find_unique_row(&[(0, "13")]).unwrap();
        assert_eq!(t.cell(1, row), "1");
        assert_eq!(t.cell(2, row), "PM");
    }

    #[test]
    fn reverse_lookup_by_pair() {
        let t = time_table();
        let row = t.find_unique_row(&[(1, "1"), (2, "PM")]).unwrap();
        assert_eq!(t.cell(0, row), "13");
    }
}
