//! `GenerateStr_u`: synthesis of all `Lu` programs consistent with one
//! example (§5.3).
//!
//! The procedure is `GenerateStr'_t` followed by a final `GenerateStr_s`:
//!
//! 1. **Relaxed reachability.** Like `GenerateStr_t`, but a cell `T[C, r]`
//!    is reachable from the frontier when it can be *syntactically
//!    assembled* from known strings — not only when it equals one. Per the
//!    paper's practical restriction we first require a substring relation
//!    (`T[C,r] ⊑ w` or `w ⊑ T[C,r]` for some known `w`), then require the
//!    assembly DAG to contain an expression using at least one non-constant
//!    atom ("uses a variable from σ ∪ η̃").
//! 2. **Generalized conditions.** For an activated row, each candidate-key
//!    column `C'` gets the predicate `C' = GenerateStr_s(σ ∪ η̃, T[C', r])`
//!    — a nested DAG whose constant paths subsume `Lt`'s `C' = s`.
//! 3. **Top-level DAG.** `GenerateStr_s(σ ∪ η̃, s)` over all reachable
//!    strings builds the output DAG whose atoms reference lookup nodes.
//!
//! The iteration bound `k` defaults to the number of tables (§4.3).
//!
//! The iteration itself lives in `sst-lookup`'s shared reachability engine
//! ([`sst_lookup::reach`]); this module contributes only the *relaxed* gate
//! ([`RelaxedGate`]): a cell activates when it is substring-related to a
//! frontier string (answered by the `SubstringIndex` postings behind
//! [`Database::cells_related_to`] — no cell scan) and assemblable from the
//! known strings with at least one non-constant atom, and conditions carry
//! nested-DAG predicates over the step's σ ∪ η̃ snapshot.

use std::collections::HashSet;
use std::sync::Arc;

use sst_arena::StructId;
use sst_lookup::reach::{reach, Activation, ReachPolicy, ReachState};
use sst_lookup::NodeId;
use sst_par::CancelToken;
use sst_syntactic::{generate_dag_prepared, Dag, GenOptions, PreparedSources};
use sst_tables::{ColId, Database, IntMap, RowId, Symbol, TableId};

use crate::cache::{DagCache, ExampleDeps, SourcesEpoch};
use crate::dstruct::{GenCondU, GenLookupU, GenPredU, SemDStruct, SemNode};

/// Options for `Lu` generation.
#[derive(Debug, Clone)]
pub struct LuOptions {
    /// Reachability depth bound; `None` = number of tables.
    pub max_depth: Option<usize>,
    /// Syntactic-layer options (token set, context bound).
    pub syntactic: GenOptions,
    /// §5.3's "stronger restriction": only consider cells in a substring
    /// relation with a known string. `true` (the paper's experimental
    /// setting, and ours) trades a sliver of completeness for large
    /// speedups; `false` gates on assemblability alone.
    pub substring_gate: bool,
}

impl Default for LuOptions {
    fn default() -> Self {
        LuOptions {
            max_depth: None,
            syntactic: GenOptions::default(),
            substring_gate: true,
        }
    }
}

impl LuOptions {
    /// Effective depth bound for a database.
    pub fn depth_for(&self, db: &Database) -> usize {
        self.max_depth.unwrap_or_else(|| db.len().max(1))
    }
}

/// The relaxed-reachability gate (§5.3): substring relation via the
/// precomputed index, then syntactic assemblability, with nested-DAG key
/// predicates over the step's σ ∪ η̃ snapshot.
///
/// The assemblability check ("the cell's DAG has a program using at least
/// one non-constant atom") never builds a DAG here. A freshly generated DAG
/// has every `(i, j)` edge present and every edge carries the constant
/// atom, so a non-constant program exists iff *some atom anywhere* is
/// non-constant — iff some single character of the cell occurs in some
/// source. Two consequences the gate exploits:
///
/// * **substring gate on** — every candidate passes vacuously: the
///   relating frontier string is itself a source, and either direction of
///   the relation is an occurrence (cell ⊑ w occurs in `w`; `w` ⊑ cell
///   puts `w` on one of the cell's edges), so the per-candidate check is
///   skipped entirely;
/// * **substring gate off** — the check reduces to one character-set
///   membership probe per cell character against the union of source
///   characters.
struct RelaxedGate<'a> {
    opts: &'a LuOptions,
    /// The σ ∪ η̃ snapshot: prepared sources for every node the engine had
    /// when the current step's [`RelaxedGate::activations`] ran —
    /// conditions see the *pre-expansion* sources, as the paper specifies.
    /// Extended incrementally (sources only grow), so token runs and
    /// learned positions are computed once per node across all steps.
    prepared: Option<PreparedSources<NodeId>>,
    /// The snapshot's values in node order — the content identity the
    /// [`DagCache`] interns into a sources epoch. Extended in lockstep
    /// with `prepared`.
    source_syms: Vec<Symbol>,
    /// Per-step memo: condition handle per activated row. Rows activated
    /// through several cells in one step share one `Arc` instead of
    /// re-deriving the identical predicate DAGs (insert-time dedup made
    /// the duplicates no-ops anyway; the memo skips building them).
    row_conds: IntMap<(TableId, RowId), Arc<Vec<GenCondU>>>,
    /// The memoized DAG plane, when the caller runs with one. Shared (the
    /// cache is interior-mutable): concurrent generations over synthesizer
    /// clones read-probe the same plane without serializing.
    cache: Option<&'a DagCache>,
    /// The current snapshot's interned epoch; `None` while no cache is
    /// attached (or before the first sync).
    epoch: Option<SourcesEpoch>,
    /// Cooperative cancellation, checked once per reachability step and
    /// once per activated row (coarse granularity — never inside the
    /// per-cell loops). A fired token dries the frontier up: no further
    /// activations or conditions are produced, so `reach` terminates with
    /// whatever partial state it had, and the caller discards it.
    cancel: &'a CancelToken,
}

impl RelaxedGate<'_> {
    /// Brings `prepared` (and the snapshot epoch) up to date with every
    /// node the engine holds.
    fn sync_sources(&mut self, state: &ReachState<GenLookupU>) {
        let prepared = self.prepared.get_or_insert_with(|| {
            PreparedSources::new(&[] as &[(NodeId, &str)], &self.opts.syntactic)
        });
        if prepared.len() < state.len() {
            let fresh: Vec<(NodeId, &'static str)> = state
                .iter()
                .skip(prepared.len())
                .map(|(id, val)| (id, val.as_str()))
                .collect();
            self.source_syms
                .extend(state.symbols().skip(self.source_syms.len()));
            prepared.extend(&fresh);
        }
        if let Some(cache) = self.cache {
            self.epoch = Some(cache.epoch_of(&self.source_syms));
        }
    }

    /// The DAG of all expressions producing `value` over the current
    /// snapshot — served from the cache when one is attached (keyed by
    /// `(sources_epoch, value)`, so repeated key values share one
    /// allocation), built fresh otherwise.
    fn dag_for_value(&mut self, value: Symbol) -> Arc<Dag<NodeId>> {
        let prepared = self.prepared.as_ref().expect("sync_sources ran this step");
        match (self.cache, self.epoch) {
            (Some(cache), Some(epoch)) => cache.dag_for(epoch, value, || {
                generate_dag_prepared(prepared, value.as_str())
            }),
            _ => Arc::new(generate_dag_prepared(prepared, value.as_str())),
        }
    }
}

impl ReachPolicy for RelaxedGate<'_> {
    type Prog = GenLookupU;
    type Conds = Arc<Vec<GenCondU>>;

    // Empty inputs are dropped up front: they can neither relate to a cell
    // nor contribute atoms.
    const SEED_EMPTY_INPUTS: bool = false;
    // The assembled cell is not a lookup output — it is merely assemblable
    // — so it only becomes a node if some other activation reaches it.
    const MATERIALIZE_HITS: bool = false;

    fn var_prog(&self, var: u32) -> GenLookupU {
        GenLookupU::Var(var)
    }

    fn activations(
        &mut self,
        db: &Database,
        state: &ReachState<GenLookupU>,
        frontier: &[NodeId],
        out: &mut Vec<Activation>,
    ) {
        // Cancellation checkpoint (once per reachability step): producing
        // no activations dries the frontier up and `reach` terminates.
        if self.cancel.is_cancelled() {
            return;
        }
        // Candidate cells: substring-related to some frontier string (the
        // paper's experimental restriction), answered by the per-table
        // `SubstringIndex` postings; or every cell when the gate is
        // disabled.
        let mut candidates: HashSet<(TableId, RowId, ColId)> = HashSet::new();
        if self.opts.substring_gate {
            for &node in frontier {
                let w = state.val(node).as_str();
                for (tid, cell) in db.cells_related_to(w) {
                    candidates.insert((tid, cell.row, cell.col));
                }
            }
        } else {
            for (tid, table) in db.iter() {
                for (cell, v) in table.iter_cells() {
                    if !v.is_empty() {
                        candidates.insert((tid, cell.row, cell.col));
                    }
                }
            }
        }
        // NOTE: cells hit by an earlier frontier are *revisited* when the
        // current frontier relates to them again — the paper's line-15
        // behavior of adding a Select with the updated condition set `B`
        // (richer sources). Duplicate Selects are deduplicated on insert.
        let mut ordered: Vec<(TableId, RowId, ColId)> = candidates.into_iter().collect();
        ordered.sort_unstable();

        // Snapshot σ ∪ η̃ (this step's new nodes) and reset the per-step
        // condition memo. (Symbols resolve to `&'static str`, so the
        // snapshot borrows nothing from `state`.)
        self.sync_sources(state);
        self.row_conds.clear();

        // Gate: the matched cell must be assemblable with ≥1 non-constant
        // atom from the *current* sources. Substring-related candidates
        // pass vacuously (see the type docs); the full-enumeration path
        // checks shared characters instead of building DAGs.
        if self.opts.substring_gate {
            for (tid, row, col) in ordered {
                out.push(Activation {
                    table: tid,
                    row,
                    hit_cols: vec![col],
                });
            }
        } else {
            let mut source_chars: HashSet<char> = HashSet::new();
            for (_, val) in state.iter() {
                source_chars.extend(val.as_str().chars());
            }
            for (tid, row, col) in ordered {
                let value = db.table(tid).cell(col, row);
                if value.chars().any(|c| source_chars.contains(&c)) {
                    out.push(Activation {
                        table: tid,
                        row,
                        hit_cols: vec![col],
                    });
                }
            }
        }
    }

    fn conds(
        &mut self,
        db: &Database,
        _state: &ReachState<GenLookupU>,
        act: &Activation,
    ) -> Option<Arc<Vec<GenCondU>>> {
        // Cancellation checkpoint (once per activated row): skipping the
        // condition skips the row's predicate-DAG builds entirely.
        if self.cancel.is_cancelled() {
            return None;
        }
        if let Some(conds) = self.row_conds.get(&(act.table, act.row)) {
            return Some(Arc::clone(conds));
        }
        let table = db.table(act.table);
        let conds: Vec<GenCondU> = table
            .candidate_keys()
            .iter()
            .enumerate()
            .map(|(key_idx, key)| GenCondU {
                key: key_idx,
                preds: key
                    .iter()
                    .map(|&kc| GenPredU {
                        col: kc,
                        dag: self.dag_for_value(table.cell_sym(kc, act.row)),
                    })
                    .collect(),
            })
            .collect();
        let conds = (!conds.is_empty()).then(|| Arc::new(conds))?;
        self.row_conds
            .insert((act.table, act.row), Arc::clone(&conds));
        Some(conds)
    }

    fn select_prog(&self, act: &Activation, col: ColId, conds: &Arc<Vec<GenCondU>>) -> GenLookupU {
        GenLookupU::Select {
            col,
            table: act.table,
            conds: Arc::clone(conds),
        }
    }
}

/// Builds the `Du` structure of all `Lu` programs consistent with one
/// input-output example. Never fails: the all-constant program always
/// exists (ranking deprioritizes it).
pub fn generate_str_u(
    db: &Database,
    inputs: &[&str],
    output: &str,
    opts: &LuOptions,
) -> SemDStruct {
    generate_str_u_impl(db, inputs, output, opts, None, &CancelToken::default())
}

/// [`generate_str_u`] under a cooperative [`CancelToken`]: a fired token
/// makes the reachability frontier dry up at the next coarse checkpoint
/// and the (partial, to-be-discarded) structure return early. The caller
/// is responsible for checking the token and discarding the result.
pub(crate) fn generate_str_u_budgeted(
    db: &Database,
    inputs: &[&str],
    output: &str,
    opts: &LuOptions,
    cancel: &CancelToken,
) -> SemDStruct {
    generate_str_u_impl(db, inputs, output, opts, None, cancel)
}

/// [`generate_str_u`] backed by a [`DagCache`]: per-value DAGs are served
/// from `(sources_epoch, value)` entries and whole repeated examples from
/// the example memo, with results bit-identical to the uncached path (the
/// cache self-validates against `db.epoch()` first, so a mutated database
/// never serves stale structures). The cache must not be shared across
/// differing `opts`.
pub fn generate_str_u_cached(
    db: &Database,
    inputs: &[&str],
    output: &str,
    opts: &LuOptions,
    cache: &DagCache,
) -> SemDStruct {
    generate_str_u_keyed(db, inputs, output, opts, cache, &CancelToken::default()).0
}

/// [`generate_str_u_cached`] that also reports the structure's arena id,
/// the key half of the example-pair intersection memo (`Synthesizer::learn`
/// keys `d₁ ∩ d₂` on the operands' ids). A cancellation observed during
/// the build skips the whole-example store (the partial structure never
/// enters the memo) and reports no id.
pub(crate) fn generate_str_u_keyed(
    db: &Database,
    inputs: &[&str],
    output: &str,
    opts: &LuOptions,
    cache: &DagCache,
    cancel: &CancelToken,
) -> (SemDStruct, Option<StructId>) {
    // Whole-example memo: `Synthesize` on a growing example prefix (the
    // §3.2 loop) replays generation for every earlier example; generation
    // is deterministic in (db, inputs, output, opts), so an unmutated
    // database can serve the previous structure outright.
    let db_epoch = db.epoch();
    cache.validate_db(db);
    let ins: Vec<Symbol> = inputs.iter().map(|s| Symbol::intern(s)).collect();
    let out = Symbol::intern(output);
    if let Some((uid, hit)) = cache.example(db_epoch, &ins, out) {
        return (hit, Some(uid));
    }
    let d = generate_str_u_impl(db, inputs, output, opts, Some(cache), cancel);
    if cancel.is_cancelled() {
        // Partial structure: never enters the whole-example memo.
        return (d, None);
    }
    // With the substring gate on, the structure's node values summarize
    // exactly the strings that could activate cells, so recording the
    // reads makes the entry revalidatable across unrelated row-level
    // mutations; gate-off activations also depend on shared characters,
    // which the summary cannot prove unaffected — those entries evict on
    // any epoch move.
    let deps = opts.substring_gate.then(|| {
        let (tables, vals) = d.reads();
        ExampleDeps {
            tables: tables.into(),
            vals: vals.into(),
        }
    });
    let uid = cache.store_example(db_epoch, &ins, out, &d, deps);
    (d, Some(uid))
}

fn generate_str_u_impl(
    db: &Database,
    inputs: &[&str],
    output: &str,
    opts: &LuOptions,
    cache: Option<&DagCache>,
    cancel: &CancelToken,
) -> SemDStruct {
    let mut gate = RelaxedGate {
        opts,
        prepared: None,
        source_syms: Vec::new(),
        row_conds: IntMap::default(),
        cache,
        epoch: None,
        cancel,
    };
    let state = reach(db, inputs, opts.depth_for(db), &mut gate);

    // Top-level DAG over every known string: extend the last step's
    // snapshot with the final expansion's nodes instead of re-preparing.
    // Served from the same `(sources_epoch, value)` plane as the predicate
    // DAGs — an output equal to a cached key value shares its allocation.
    gate.sync_sources(&state);
    let top: Arc<Dag<NodeId>> = gate.dag_for_value(Symbol::intern(output));

    SemDStruct {
        nodes: state
            .into_nodes()
            .into_iter()
            .map(|(val, progs)| SemNode {
                vals: vec![val],
                progs: progs.into_iter().collect(),
            })
            .collect(),
        top: Some(top),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_sem;
    use crate::rank::LuRankWeights;
    use sst_tables::Table;

    fn comp_db() -> Database {
        Database::from_tables(vec![Table::new(
            "Comp",
            vec!["Id", "Name"],
            vec![
                vec!["c1", "Microsoft"],
                vec!["c2", "Google"],
                vec!["c3", "Apple"],
                vec!["c4", "Facebook"],
                vec!["c5", "IBM"],
                vec!["c6", "Xerox"],
            ],
        )
        .unwrap()])
        .unwrap()
    }

    fn bike_db() -> Database {
        Database::from_tables(vec![Table::new(
            "BikePrices",
            vec!["Bike", "Price"],
            vec![
                vec!["Ducati100", "10,000"],
                vec!["Ducati125", "12,500"],
                vec!["Ducati250", "18,000"],
                vec!["Honda125", "11,500"],
                vec!["Honda250", "19,000"],
            ],
        )
        .unwrap()])
        .unwrap()
    }

    #[test]
    fn exact_lookup_still_works() {
        let db = comp_db();
        let d = generate_str_u(&db, &["c2"], "Google", &LuOptions::default());
        assert!(d.has_programs());
        // The top DAG's full edge should offer a lookup-node atom.
        assert!(d.count(2) > sst_counting::BigUint::one());
    }

    #[test]
    fn example6_substring_indexed_lookup_reachable() {
        // "c4 c3 c1" -> "Facebook Apple Microsoft": cells c4/c3/c1 are
        // substrings of the input, so their rows activate and the names
        // become sources for the top DAG.
        let db = comp_db();
        let d = generate_str_u(
            &db,
            &["c4 c3 c1"],
            "Facebook Apple Microsoft",
            &LuOptions::default(),
        );
        assert!(d.has_programs());
        // Extraction must produce a program that generalizes.
        let w = LuRankWeights::default();
        let prog = w.best(&d, 2).expect("top program");
        let got = eval_sem(
            &prog.expr,
            &db,
            &["c2 c5 c6"],
            &LuOptions::default().syntactic.token_set,
        );
        assert_eq!(got.as_deref(), Some("Google IBM Xerox"));
    }

    #[test]
    fn example5_concat_indexed_lookup_reachable() {
        let db = bike_db();
        let d = generate_str_u(&db, &["Honda", "125"], "11,500", &LuOptions::default());
        assert!(d.has_programs());
        let w = LuRankWeights::default();
        let prog = w.best(&d, 2).expect("top program");
        let got = eval_sem(
            &prog.expr,
            &db,
            &["Ducati", "250"],
            &LuOptions::default().syntactic.token_set,
        );
        assert_eq!(got.as_deref(), Some("18,000"));
    }

    #[test]
    fn unrelated_output_const_only() {
        let db = comp_db();
        let d = generate_str_u(&db, &["zzz"], "!!??!!", &LuOptions::default());
        // Still has (constant) programs...
        assert!(d.has_programs());
        // ...and exactly the constant decompositions: no lookup atoms.
        assert_eq!(d.len(), 1, "no cells relate to zzz");
    }

    #[test]
    fn empty_output_has_empty_program() {
        let db = comp_db();
        let d = generate_str_u(&db, &["c1"], "", &LuOptions::default());
        assert!(d.has_programs());
        assert_eq!(d.count(1).to_u64(), Some(1));
    }

    #[test]
    fn depth_bound_limits_expansion() {
        let db = comp_db();
        let opts = LuOptions {
            max_depth: Some(0),
            ..Default::default()
        };
        let d = generate_str_u(&db, &["c2"], "Google", &opts);
        // No reachability: only the input node exists and the output is
        // only constant-representable.
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn disabling_gate_finds_concat_assembled_keys() {
        // Key "XY" is assemblable from "X-Y" but not substring-related to
        // it: the paper's general condition (gate off) reaches the row,
        // the experimental restriction (gate on) does not.
        let db = Database::from_tables(vec![Table::new(
            "Pairs",
            vec!["Key", "Val"],
            vec![vec!["XY", "ok1"], vec!["ZW", "ok2"]],
        )
        .unwrap()])
        .unwrap();
        let gated = generate_str_u(&db, &["X-Y"], "ok1", &LuOptions::default());
        assert_eq!(gated.len(), 1, "gate should block the XY row");
        let open = generate_str_u(
            &db,
            &["X-Y"],
            "ok1",
            &LuOptions {
                substring_gate: false,
                ..Default::default()
            },
        );
        assert!(open.len() > 1, "general condition should reach the row");
        let vals: Vec<&str> = open.nodes.iter().map(|n| n.vals[0].as_str()).collect();
        assert!(vals.contains(&"ok1"));
        // The learned program under the open gate generalizes.
        let w = LuRankWeights::default();
        let prog = w.best(&open, 2).unwrap();
        let got = eval_sem(
            &prog.expr,
            &db,
            &["Z-W"],
            &LuOptions::default().syntactic.token_set,
        );
        assert_eq!(got.as_deref(), Some("ok2"));
    }

    #[test]
    fn substring_relation_gate_blocks_unrelated_cells() {
        let db = comp_db();
        let d = generate_str_u(&db, &["c2"], "Google", &LuOptions::default());
        // c2's row activates; unrelated rows (c4, Facebook, ...) must not.
        let vals: Vec<&str> = d.nodes.iter().map(|n| n.vals[0].as_str()).collect();
        assert!(vals.contains(&"Google"));
        assert!(!vals.contains(&"Facebook"));
    }
}
