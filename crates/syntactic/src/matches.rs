//! Token-sequence match computation over precomputed runs.
//!
//! A sequence `r = TokenSeq(τ1..τn)` *matches ending at* position `t` iff
//! the maximal run of `τn` ending exactly at `t` exists, the maximal run of
//! `τ(n-1)` ending exactly at that run's start exists, and so on. With
//! maximal-run token semantics this chain is unique, so membership tests are
//! O(n log runs). Mirrored for *matches starting at*.
//!
//! These two predicates induce the position sets used by `pos(r1, r2, c)`:
//! `T(r1, r2) = ends(r1) ∩ starts(r2)`, with `ε` matching everywhere.

use crate::language::RegexSeq;
use crate::tokens::{StringRuns, TokenSet};

/// Match computations for one subject string.
pub struct Matcher<'a> {
    runs: &'a StringRuns,
    set: &'a TokenSet,
}

impl<'a> Matcher<'a> {
    /// Creates a matcher over precomputed runs.
    pub fn new(runs: &'a StringRuns, set: &'a TokenSet) -> Self {
        Matcher { runs, set }
    }

    /// True iff `r` matches a token-run chain ending exactly at `pos`.
    /// `ε` matches at every position.
    pub fn matches_ending_at(&self, r: &RegexSeq, pos: u32) -> bool {
        let mut end = pos;
        for token in r.0.iter().rev() {
            let Some(idx) = self.set.position(*token) else {
                return false;
            };
            match self.runs.run_ending_at(idx, end) {
                Some((start, _)) => end = start,
                None => return false,
            }
        }
        true
    }

    /// True iff `r` matches a token-run chain starting exactly at `pos`.
    pub fn matches_starting_at(&self, r: &RegexSeq, pos: u32) -> bool {
        let mut start = pos;
        for token in &r.0 {
            let Some(idx) = self.set.position(*token) else {
                return false;
            };
            match self.runs.run_starting_at(idx, start) {
                Some((_, end)) => start = end,
                None => return false,
            }
        }
        true
    }

    /// All positions where `r` matches ending there, ascending.
    pub fn all_ends(&self, r: &RegexSeq) -> Vec<u32> {
        (0..=self.runs.len())
            .filter(|&t| self.matches_ending_at(r, t))
            .collect()
    }

    /// All positions where `r` matches starting there, ascending.
    pub fn all_starts(&self, r: &RegexSeq) -> Vec<u32> {
        (0..=self.runs.len())
            .filter(|&t| self.matches_starting_at(r, t))
            .collect()
    }

    /// `T(r1, r2)`: positions `t` with `r1` ending at `t` and `r2` starting
    /// at `t`, ascending. This is the denotation used by `pos(r1, r2, c)`.
    pub fn match_positions(&self, r1: &RegexSeq, r2: &RegexSeq) -> Vec<u32> {
        (0..=self.runs.len())
            .filter(|&t| self.matches_ending_at(r1, t) && self.matches_starting_at(r2, t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::Token;

    fn matcher_fixture(s: &str) -> (StringRuns, TokenSet) {
        let set = TokenSet::standard();
        (StringRuns::compute(s, &set), set)
    }

    #[test]
    fn epsilon_matches_everywhere() {
        let (runs, set) = matcher_fixture("ab");
        let m = Matcher::new(&runs, &set);
        assert_eq!(m.all_ends(&RegexSeq::epsilon()), vec![0, 1, 2]);
        assert_eq!(m.all_starts(&RegexSeq::epsilon()), vec![0, 1, 2]);
    }

    #[test]
    fn single_token_boundaries() {
        let (runs, set) = matcher_fixture("ab12 cd");
        let m = Matcher::new(&runs, &set);
        let num = RegexSeq::token(Token::Num);
        assert_eq!(m.all_ends(&num), vec![4]);
        assert_eq!(m.all_starts(&num), vec![2]);
        let alpha = RegexSeq::token(Token::Alpha);
        assert_eq!(m.all_ends(&alpha), vec![2, 7]);
        assert_eq!(m.all_starts(&alpha), vec![0, 5]);
    }

    #[test]
    fn two_token_chain() {
        let (runs, set) = matcher_fixture("ab12 cd");
        let m = Matcher::new(&runs, &set);
        let seq = RegexSeq(vec![Token::Alpha, Token::Num]);
        // Alpha run (0,2) followed by Num run (2,4): chain ends at 4.
        assert_eq!(m.all_ends(&seq), vec![4]);
        assert_eq!(m.all_starts(&seq), vec![0]);
    }

    #[test]
    fn anchors_in_sequences() {
        let (runs, set) = matcher_fixture("xy");
        let m = Matcher::new(&runs, &set);
        let start = RegexSeq::token(Token::Start);
        assert_eq!(m.all_ends(&start), vec![0]);
        assert_eq!(m.all_starts(&start), vec![0]);
        let end = RegexSeq::token(Token::End);
        assert_eq!(m.all_starts(&end), vec![2]);
        // StartTok then Alpha: matches starting at 0 only.
        let seq = RegexSeq(vec![Token::Start, Token::Alpha]);
        assert_eq!(m.all_starts(&seq), vec![0]);
        assert_eq!(m.all_ends(&seq), vec![2]);
    }

    #[test]
    fn match_positions_intersects() {
        let (runs, set) = matcher_fixture("10/12/2010");
        let m = Matcher::new(&runs, &set);
        let slash = RegexSeq::token(Token::Special('/'));
        let eps = RegexSeq::epsilon();
        // Positions right after each slash run.
        assert_eq!(m.match_positions(&slash, &eps), vec![3, 6]);
        // Positions where a number starts right after a slash.
        let num = RegexSeq::token(Token::Num);
        assert_eq!(m.match_positions(&slash, &num), vec![3, 6]);
        // Slash-then-slash never matches (runs merge).
        let ss = RegexSeq(vec![Token::Special('/'), Token::Special('/')]);
        assert_eq!(m.match_positions(&ss, &eps), Vec::<u32>::new());
    }

    #[test]
    fn interior_positions_do_not_match_maximal_runs() {
        let (runs, set) = matcher_fixture("abc");
        let m = Matcher::new(&runs, &set);
        let alpha = RegexSeq::token(Token::Alpha);
        // Only the run boundary at 3 matches ending; 1 and 2 are interior.
        assert_eq!(m.all_ends(&alpha), vec![3]);
    }

    #[test]
    fn unknown_token_never_matches() {
        let set = TokenSet::custom(vec![Token::Num]);
        let runs = StringRuns::compute("a1", &set);
        let m = Matcher::new(&runs, &set);
        // Alpha is not in the custom set.
        assert_eq!(
            m.all_ends(&RegexSeq::token(Token::Alpha)),
            Vec::<u32>::new()
        );
    }
}
