//! `GenerateStr_t`: forward reachability over table entries (Fig. 5a).
//!
//! Starting from the input variables, the procedure iteratively marks table
//! entries *reachable*: whenever a known string equals some cell `T[C, r]`,
//! every other cell of row `r` becomes reachable through a generalized
//! `Select` whose condition set `B` covers every candidate key of `T`, with
//! each key column `C'` constrained by `C' = {T[C', r], val⁻¹(T[C', r])}`.
//!
//! Iteration depth is bounded by `k` (defaulting to the number of tables in
//! the database, per §4.3 — the paper found no task needing self-joins), and
//! the loop also stops when no new node appears, making `GenerateStr_t`
//! sound and `k`-complete (Theorem 2).
//!
//! One deliberate refinement over the literal pseudocode: within an
//! iteration we first materialize nodes for *all* columns of every matched
//! row, then build the `B` conditions, so key columns reached in the same
//! step are referenced by node (the pseudocode's line 10 would see `⊥` for
//! columns whose node is created at line 13 moments later). This only adds
//! represented programs — soundness is unaffected and `k`-completeness is
//! preserved more faithfully.

use std::sync::Arc;

use sst_tables::{ColId, Database, IntMap, ProgSet, RowId, Symbol, SymbolMap, TableId};

use crate::dstruct::{GenCond, GenLookup, GenPred, LookupDStruct, NodeData, NodeId};

/// Options for lookup-reachability generation.
#[derive(Debug, Clone, Default)]
pub struct LtOptions {
    /// Depth bound `k`; `None` means "number of tables in the database".
    pub max_depth: Option<usize>,
}

impl LtOptions {
    /// Resolves the effective depth bound for a database.
    pub fn depth_for(&self, db: &Database) -> usize {
        self.max_depth.unwrap_or_else(|| db.len().max(1))
    }
}

/// Builds the set of all `Lt` expressions (depth ≤ k) consistent with one
/// input-output example.
pub fn generate_str_t(
    db: &Database,
    inputs: &[&str],
    output: &str,
    opts: &LtOptions,
) -> LookupDStruct {
    let k = opts.depth_for(db);
    let mut d = LookupDStruct::default();
    let mut val_to_node: SymbolMap<NodeId> = SymbolMap::default();

    let get_or_create = |d: &mut LookupDStruct,
                         val_to_node: &mut SymbolMap<NodeId>,
                         val: Symbol|
     -> (NodeId, bool) {
        if let Some(&id) = val_to_node.get(&val) {
            return (id, false);
        }
        let id = NodeId(d.nodes.len() as u32);
        d.nodes.push(NodeData {
            vals: vec![val],
            progs: ProgSet::new(),
        });
        val_to_node.insert(val, id);
        (id, true)
    };

    // Base case: one node per distinct input value.
    let mut frontier: Vec<NodeId> = Vec::new();
    for (i, value) in inputs.iter().enumerate() {
        let (node, is_new) = get_or_create(&mut d, &mut val_to_node, Symbol::intern(value));
        d.nodes[node.0 as usize]
            .progs
            .insert(GenLookup::Var(i as u32));
        if is_new {
            frontier.push(node);
        }
    }

    for _step in 0..k {
        if frontier.is_empty() {
            break;
        }
        // Collect the rows matched by the frontier values: (table, row,
        // matched columns). The probe is one u32 hash per frontier symbol.
        let mut matched: IntMap<(TableId, RowId), Vec<ColId>> = IntMap::default();
        for &node in &frontier {
            let val = d.nodes[node.0 as usize].vals[0];
            if val.is_empty() {
                continue; // empty strings match empty cells vacuously
            }
            for (tid, cell) in db.cells_equal(val) {
                matched.entry((tid, cell.row)).or_default().push(cell.col);
            }
        }
        let mut next_frontier: Vec<NodeId> = Vec::new();
        // Pass 1: materialize nodes for every column of every matched row.
        let mut keys: Vec<(TableId, RowId)> = matched.keys().copied().collect();
        keys.sort_unstable();
        for &(tid, row) in &keys {
            let table = db.table(tid);
            for col in 0..table.width() as ColId {
                let value = table.cell_sym(col, row);
                if value.is_empty() {
                    continue;
                }
                let (node, is_new) = get_or_create(&mut d, &mut val_to_node, value);
                if is_new {
                    next_frontier.push(node);
                }
            }
        }
        // Pass 2: build B per row (once — the Arc is shared by every
        // attached column) and attach Selects to non-matched columns.
        for &(tid, row) in &keys {
            let table = db.table(tid);
            let matched_cols = &matched[&(tid, row)];
            let conds: Vec<GenCond> = table
                .candidate_keys()
                .iter()
                .enumerate()
                .map(|(key_idx, key)| GenCond {
                    key: key_idx,
                    preds: key
                        .iter()
                        .map(|&kc| {
                            let value = table.cell_sym(kc, row);
                            GenPred {
                                col: kc,
                                constant: Some(value),
                                node: val_to_node.get(&value).copied(),
                            }
                        })
                        .collect(),
                })
                .collect();
            if conds.is_empty() {
                continue;
            }
            let conds = Arc::new(conds);
            for col in 0..table.width() as ColId {
                if matched_cols.contains(&col) {
                    continue;
                }
                let value = table.cell_sym(col, row);
                if value.is_empty() {
                    continue;
                }
                let node = val_to_node[&value];
                d.nodes[node.0 as usize].progs.insert(GenLookup::Select {
                    col,
                    table: tid,
                    conds: Arc::clone(&conds),
                });
            }
        }
        frontier = next_frontier;
    }

    d.target = Symbol::get(output).and_then(|s| val_to_node.get(&s).copied());
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_lookup;
    use sst_tables::Table;

    fn comp_db() -> Database {
        Database::from_tables(vec![Table::new(
            "Comp",
            vec!["Id", "Name"],
            vec![
                vec!["c1", "Microsoft"],
                vec!["c2", "Google"],
                vec!["c3", "Apple"],
            ],
        )
        .unwrap()])
        .unwrap()
    }

    /// Example 2 database (join through CustData to Sale).
    fn join_db() -> Database {
        Database::from_tables(vec![
            Table::new(
                "CustData",
                vec!["Name", "Addr", "St"],
                vec![
                    vec!["Sean Riley", "432", "15th"],
                    vec!["Peter Shaw", "24", "18th"],
                    vec!["Mike Henry", "432", "18th"],
                    vec!["Gary Lamb", "104", "12th"],
                ],
            )
            .unwrap(),
            Table::new(
                "Sale",
                vec!["Addr", "St", "Date", "Price"],
                vec![
                    vec!["24", "18th", "5/21", "110"],
                    vec!["104", "12th", "5/23", "225"],
                    vec!["432", "18th", "5/20", "2015"],
                    vec!["432", "15th", "5/24", "495"],
                ],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn simple_lookup_reaches_output() {
        let db = comp_db();
        let d = generate_str_t(&db, &["c2"], "Google", &LtOptions::default());
        assert!(d.has_programs());
        assert!(d.count(1).to_u64().unwrap() >= 1);
    }

    #[test]
    fn generated_programs_are_sound() {
        let db = comp_db();
        let d = generate_str_t(&db, &["c2"], "Google", &LtOptions::default());
        let exprs = d.enumerate_at(d.target.unwrap(), db.len(), 500);
        assert!(!exprs.is_empty());
        for e in exprs {
            assert_eq!(
                eval_lookup(&e, &db, &["c2"]).as_deref(),
                Some("Google"),
                "unsound: {}",
                e.display(&db)
            );
        }
    }

    #[test]
    fn join_example2_reaches_price() {
        let db = join_db();
        let d = generate_str_t(&db, &["Peter Shaw"], "110", &LtOptions::default());
        assert!(d.has_programs());
        // Soundness over a sample.
        let exprs = d.enumerate_at(d.target.unwrap(), 2, 200);
        for e in &exprs {
            assert_eq!(
                eval_lookup(e, &db, &["Peter Shaw"]).as_deref(),
                Some("110"),
                "unsound: {}",
                e.display(&db)
            );
        }
        // The intended join (via Addr ∧ St node predicates) is represented.
        let wanted = exprs.iter().any(|e| {
            let s = e.display(&db);
            s.contains("Select(Price, Sale")
                && s.contains("Addr = Select(Addr, CustData, Name = v1)")
                && s.contains("St = Select(St, CustData, Name = v1)")
        });
        assert!(wanted, "intended join expression missing");
    }

    #[test]
    fn unreachable_output_no_target() {
        let db = comp_db();
        let d = generate_str_t(&db, &["c2"], "Amazon", &LtOptions::default());
        assert!(!d.has_programs());
        assert!(d.count(3).is_zero());
    }

    #[test]
    fn depth_zero_only_variables() {
        let db = comp_db();
        let opts = LtOptions { max_depth: Some(0) };
        let d = generate_str_t(&db, &["c2"], "Google", &opts);
        assert!(!d.has_programs(), "no Select should be reachable at k=0");
        let d = generate_str_t(&db, &["c2"], "c2", &opts);
        assert!(d.has_programs(), "identity is depth 0");
    }

    #[test]
    fn identity_var_program_exists() {
        let db = comp_db();
        let d = generate_str_t(&db, &["c2"], "c2", &LtOptions::default());
        let exprs = d.enumerate_at(d.target.unwrap(), 1, 50);
        assert!(exprs.contains(&crate::language::LookupExpr::Var(0)));
    }

    #[test]
    fn duplicate_input_values_share_node() {
        let db = comp_db();
        let d = generate_str_t(&db, &["c2", "c2"], "Google", &LtOptions::default());
        // Both v1 and v2 live on the same node.
        let exprs = d.enumerate_at(d.target.unwrap(), 1, 50);
        let shown: Vec<String> = exprs.iter().map(|e| e.display(&db)).collect();
        assert!(shown.iter().any(|s| s.contains("Id = v1")));
        assert!(shown.iter().any(|s| s.contains("Id = v2")));
    }

    #[test]
    fn empty_cells_do_not_create_nodes() {
        let db = Database::from_tables(vec![Table::new(
            "T",
            vec!["A", "B"],
            vec![vec!["x", ""], vec!["y", "z"]],
        )
        .unwrap()])
        .unwrap();
        let d = generate_str_t(&db, &["x"], "z", &LtOptions::default());
        // "" never becomes a node; "z" is unreachable from "x"'s row.
        assert!(!d.has_programs());
        for n in &d.nodes {
            assert!(!n.vals[0].is_empty());
        }
    }

    #[test]
    fn same_row_keys_are_node_referenced() {
        // Both columns are candidate keys; reaching the row through A must
        // produce a Select over key B with a *node* reference (the pass-1 /
        // pass-2 split), enabling chains like Ex. 3.
        let db = Database::from_tables(vec![Table::new(
            "T",
            vec!["A", "B"],
            vec![vec!["in", "out"]],
        )
        .unwrap()])
        .unwrap();
        let d = generate_str_t(&db, &["in"], "out", &LtOptions::default());
        let target = d.target.unwrap();
        let has_node_pred = d.node(target).progs.iter().any(|p| match p {
            GenLookup::Select { conds, .. } => conds
                .iter()
                .flat_map(|c| c.preds.iter())
                .any(|pred| pred.node.is_some()),
            _ => false,
        });
        assert!(has_node_pred);
    }

    #[test]
    fn frontier_termination_on_fixpoint() {
        // A self-contained row: reachability saturates in one step even
        // though k allows more.
        let db = comp_db();
        let opts = LtOptions {
            max_depth: Some(50),
        };
        let d = generate_str_t(&db, &["c2"], "Google", &opts);
        assert_eq!(d.len(), 2); // only "c2" and "Google" are reachable
    }
}
