//! Substring postings index over the interned value plane.
//!
//! The §5.3 relaxed-reachability gate asks, per frontier string `s`, for
//! every cell value `v` in a *substring relation* with `s` (`v ⊑ s` or
//! `s ⊑ v`). The seed answered it by scanning every cell of every table and
//! running two `contains` checks per cell — the dominant remaining cost of
//! `GenerateStr_u` after the interned value plane landed. This index
//! precomputes postings over each table's distinct values once, at
//! [`crate::Database`] construction (alongside [`crate::ValueIndex`]), so a
//! probe touches work proportional to `|s|` and the candidate set instead of
//! the table size — the same move BlinkFill's `InputDataGraph` makes for its
//! substring queries.
//!
//! Three structures answer the two directions of the relation:
//!
//! * **`v ⊑ s`** — an exact map from full value bytes to value id, plus the
//!   sorted set of distinct value lengths: slide a window of each indexed
//!   length over `s` and probe the map. Byte windows are safe for UTF-8:
//!   a window equal to a valid UTF-8 value necessarily starts on a char
//!   boundary (UTF-8 is self-synchronizing), matching `str::contains`.
//! * **`s ⊑ v`, `|s| ≥ q`** — classic q-gram postings (`q = 3`): every
//!   value of length ≥ q posts each of its q-grams. The probe takes the
//!   *rarest* of `s`'s q-grams as the candidate list (any missing gram
//!   proves no value contains `s`) and verifies candidates with one
//!   `contains` each.
//! * **`s ⊑ v`, `|s| < q`** — a short-gram side table: every value posts
//!   its grams of length `1..q` too, so a short probe is itself a gram key
//!   and the postings list *is* the exact answer, no verification needed.
//!   This also covers cells shorter than `q`, which post no q-grams.
//!
//! Empty values are never indexed and empty probes never relate, matching
//! the [`crate::Table::cells_related_to`] scan, which remains in the tree as
//! this index's correctness oracle (see the property tests).
//!
//! The index is **incrementally maintainable** for the row-mutation plane:
//! every distinct value carries a refcount of the live cells holding it
//! ([`SubstringIndex::insert_value`] / [`SubstringIndex::remove_value`]),
//! postings are kept sorted by binary insertion so entries can be spliced
//! out, and freed value ids go on a free list for reuse. Dense-id
//! *numbering* may therefore diverge from a fresh build's after
//! delete/reinsert churn — equivalence with a rebuild is pinned at the
//! answer level ([`SubstringIndex::related_values`] sets), which is all any
//! consumer observes (the `GenerateStr_u` gate canonicalizes candidate
//! order).

use std::collections::HashMap;

use crate::intern::Symbol;
use crate::table::{ColId, Table};

/// Gram width of the long-probe postings. Values shorter than `Q` are
/// covered by the short-gram side table.
pub const Q: usize = 3;

/// Substring-relation postings over one table's distinct cell values.
///
/// Keys borrow the interner's `&'static` bytes, so the index stores no
/// string data of its own.
#[derive(Debug, Clone, Default)]
pub struct SubstringIndex {
    /// Value per dense id; slots of freed ids are stale until reused.
    vals: Vec<Symbol>,
    /// Live cells holding each id's value; `0` = the id slot is free.
    refs: Vec<u32>,
    /// Freed ids awaiting reuse.
    free: Vec<u32>,
    /// Full value bytes → dense id (the `v ⊑ s` window probe); live values
    /// only.
    exact: HashMap<&'static [u8], u32>,
    /// `(byte length, distinct live values of that length)`, ascending by
    /// length.
    lens: Vec<(u32, u32)>,
    /// q-gram → ids of values (length ≥ `Q`) containing it, ascending.
    grams: HashMap<&'static [u8], Vec<u32>>,
    /// Short gram (length `1..Q`) → ids of values containing it, ascending.
    short: HashMap<&'static [u8], Vec<u32>>,
}

impl SubstringIndex {
    /// Builds the index over one table's live cells.
    pub fn build(table: &Table) -> Self {
        let mut idx = SubstringIndex::default();
        for r in table.row_ids() {
            for c in 0..table.width() {
                idx.insert_value(table.cell_sym(c as ColId, r));
            }
        }
        idx
    }

    /// Records one more live cell holding `v`, indexing the value if it is
    /// new. Empty values are never indexed.
    pub fn insert_value(&mut self, v: Symbol) {
        if v.is_empty() {
            return;
        }
        let bytes = v.as_str().as_bytes();
        if let Some(&id) = self.exact.get(bytes) {
            self.refs[id as usize] += 1;
            return;
        }
        let id = match self.free.pop() {
            Some(id) => {
                self.vals[id as usize] = v;
                self.refs[id as usize] = 1;
                id
            }
            None => {
                let id = self.vals.len() as u32;
                self.vals.push(v);
                self.refs.push(1);
                id
            }
        };
        self.exact.insert(bytes, id);
        let len = bytes.len() as u32;
        match self.lens.binary_search_by_key(&len, |&(l, _)| l) {
            Ok(pos) => self.lens[pos].1 += 1,
            Err(pos) => self.lens.insert(pos, (len, 1)),
        }
        if bytes.len() >= Q {
            for gram in bytes.windows(Q) {
                posting_insert(self.grams.entry(gram).or_default(), id);
            }
        }
        for glen in 1..Q.min(bytes.len() + 1) {
            for gram in bytes.windows(glen) {
                posting_insert(self.short.entry(gram).or_default(), id);
            }
        }
    }

    /// Records that one live cell holding `v` disappeared; the value is
    /// un-indexed (postings spliced out, id freed) when its last cell goes.
    /// A value never indexed is ignored.
    pub fn remove_value(&mut self, v: Symbol) {
        if v.is_empty() {
            return;
        }
        let bytes = v.as_str().as_bytes();
        let Some(&id) = self.exact.get(bytes) else {
            return;
        };
        self.refs[id as usize] -= 1;
        if self.refs[id as usize] > 0 {
            return;
        }
        self.exact.remove(bytes);
        let len = bytes.len() as u32;
        if let Ok(pos) = self.lens.binary_search_by_key(&len, |&(l, _)| l) {
            self.lens[pos].1 -= 1;
            if self.lens[pos].1 == 0 {
                self.lens.remove(pos);
            }
        }
        if bytes.len() >= Q {
            for gram in bytes.windows(Q) {
                posting_remove(&mut self.grams, gram, id);
            }
        }
        for glen in 1..Q.min(bytes.len() + 1) {
            for gram in bytes.windows(glen) {
                posting_remove(&mut self.short, gram, id);
            }
        }
        self.free.push(id);
    }

    /// Number of distinct indexed values.
    pub fn distinct_len(&self) -> usize {
        self.exact.len()
    }

    /// All distinct values in a substring relation with `s`: `v ⊑ s` or
    /// `s ⊑ v`, in unspecified order. Empty probes never relate.
    ///
    /// Work is proportional to `|s|` (window/gram hashing) plus the
    /// emitted candidate set — never the table's value count. Dedup needs
    /// no table-sized scratch: within direction 2 a postings list holds
    /// each id at most once, and the only id the two directions can share
    /// is the value equal to `s` itself (`v ⊑ s ∧ s ⊑ v ⇒ v = s`).
    pub fn related_values(&self, s: &str) -> Vec<Symbol> {
        let mut out = Vec::new();
        if s.is_empty() || self.exact.is_empty() {
            return out;
        }
        let sb = s.as_bytes();

        // Direction 1 (v ⊑ s): windows of every indexed length. Distinct
        // windows can hit the same value (repeated occurrence in `s`), so
        // dedup against the ids emitted so far — a list bounded by the
        // answer size, not the table.
        let mut emitted: Vec<u32> = Vec::new();
        for &(len, _) in &self.lens {
            let len = len as usize;
            if len > sb.len() {
                break; // lens ascend
            }
            for window in sb.windows(len) {
                if let Some(&id) = self.exact.get(window) {
                    if !emitted.contains(&id) {
                        emitted.push(id);
                        out.push(self.vals[id as usize]);
                    }
                }
            }
        }
        // The one id both directions can emit: the value equal to `s`.
        // Direction 1 always finds it when it exists (the full-width
        // window), so direction 2 below skips exactly this id.
        let self_id = self.exact.get(sb).copied();

        // Direction 2 (s ⊑ v).
        if sb.len() < Q {
            // The probe is itself a gram key: postings are the exact answer.
            if let Some(posting) = self.short.get(sb) {
                for &id in posting {
                    if Some(id) != self_id {
                        out.push(self.vals[id as usize]);
                    }
                }
            }
        } else {
            // Rarest q-gram of the probe; a value containing `s` contains
            // every gram of `s`, so one absent gram proves emptiness.
            let mut rarest: Option<&Vec<u32>> = None;
            for gram in sb.windows(Q) {
                match self.grams.get(gram) {
                    None => return out,
                    Some(p) => {
                        if rarest.is_none_or(|r| p.len() < r.len()) {
                            rarest = Some(p);
                        }
                    }
                }
            }
            if let Some(candidates) = rarest {
                for &id in candidates {
                    if Some(id) != self_id && self.vals[id as usize].as_str().contains(s) {
                        out.push(self.vals[id as usize]);
                    }
                }
            }
        }
        out
    }
}

/// Splices `id` into a sorted postings list; a gram repeated within one
/// value probes as already-present and is posted once.
fn posting_insert(posting: &mut Vec<u32>, id: u32) {
    if let Err(pos) = posting.binary_search(&id) {
        posting.insert(pos, id);
    }
}

/// Splices `id` out of a gram's postings, dropping the entry when it
/// empties (so churn never strands empty lists).
fn posting_remove(postings: &mut HashMap<&'static [u8], Vec<u32>>, gram: &[u8], id: u32) {
    if let Some(posting) = postings.get_mut(gram) {
        if let Ok(pos) = posting.binary_search(&id) {
            posting.remove(pos);
        }
        if posting.is_empty() {
            postings.remove(gram);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(cells: &[&str]) -> SubstringIndex {
        let rows: Vec<Vec<&str>> = cells.iter().map(|c| vec![*c]).collect();
        let mut with_ids: Vec<Vec<String>> = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let mut r = vec![format!("id{i}")];
            r.extend(row.iter().map(|s| s.to_string()));
            with_ids.push(r);
        }
        let t = Table::new("T", vec!["Id", "V"], with_ids).unwrap();
        SubstringIndex::build(&t)
    }

    fn related(idx: &SubstringIndex, s: &str) -> Vec<&'static str> {
        let mut v: Vec<&str> = idx.related_values(s).iter().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn both_directions_found() {
        let idx = index(&["Microsoft", "Google", "c1"]);
        // v ⊑ s.
        assert_eq!(related(&idx, "c1 and Google"), vec!["Google", "c1"]);
        // s ⊑ v.
        assert_eq!(related(&idx, "soft"), vec!["Microsoft"]);
        // Equality relates both ways but reports once.
        assert_eq!(related(&idx, "Google"), vec!["Google"]);
    }

    #[test]
    fn short_probe_uses_side_table() {
        let idx = index(&["Microsoft", "ab", "b"]);
        // |s| = 1 < Q: values containing "b".
        assert_eq!(related(&idx, "b"), vec!["ab", "b"]);
        // |s| = 2 < Q.
        assert_eq!(related(&idx, "so"), vec!["Microsoft"]);
    }

    #[test]
    fn short_cells_relate_through_windows() {
        let idx = index(&["ab", "x"]);
        assert_eq!(related(&idx, "zabz"), vec!["ab"]);
        assert_eq!(related(&idx, "x"), vec!["x"]);
    }

    #[test]
    fn empty_probe_never_relates() {
        let idx = index(&["a", "bc"]);
        assert!(idx.related_values("").is_empty());
    }

    #[test]
    fn unrelated_probe_empty() {
        let idx = index(&["Microsoft", "Google"]);
        assert!(idx.related_values("zzzz").is_empty());
    }

    #[test]
    fn unicode_values_and_probes() {
        let idx = index(&["über", "ü", "naïve"]);
        assert_eq!(related(&idx, "über-naïve"), vec!["naïve", "ü", "über"]);
        assert_eq!(related(&idx, "ü"), vec!["ü", "über"]);
        // A probe slicing through multibyte chars still matches correctly.
        assert_eq!(related(&idx, "aï"), vec!["naïve"]);
    }

    #[test]
    fn duplicate_cells_index_once() {
        let idx = index(&["dup", "dup", "dup"]);
        assert_eq!(idx.distinct_len(), 3 + 1); // 3 ids + one "dup"
        assert_eq!(related(&idx, "dup"), vec!["dup"]);
    }

    #[test]
    fn repeated_grams_within_value_post_once() {
        let idx = index(&["aaaa"]);
        assert_eq!(related(&idx, "aa"), vec!["aaaa"]);
        assert_eq!(related(&idx, "aaaaaa"), vec!["aaaa"]);
    }

    #[test]
    fn refcounts_survive_duplicate_removal() {
        let mut idx = index(&["dup", "dup", "other"]);
        // Removing one of two "dup" cells keeps the value indexed.
        idx.remove_value(Symbol::intern("dup"));
        assert_eq!(related(&idx, "dup"), vec!["dup"]);
        // Removing the last strips it everywhere.
        idx.remove_value(Symbol::intern("dup"));
        assert!(idx.related_values("dup").is_empty());
        assert!(idx.related_values("du").is_empty());
        assert_eq!(related(&idx, "other"), vec!["other"]);
    }

    #[test]
    fn removed_then_reinserted_answers_like_rebuild() {
        let mut idx = index(&["Microsoft", "Google", "naïve"]);
        idx.remove_value(Symbol::intern("Google"));
        idx.insert_value(Symbol::intern("Alphabet"));
        idx.insert_value(Symbol::intern("Google"));
        let fresh = index(&["Microsoft", "naïve", "Alphabet", "Google"]);
        for probe in [
            "Google",
            "soft",
            "Alphabet Google",
            "aï",
            "zz",
            "",
            "Microsoft Office",
        ] {
            assert_eq!(related(&idx, probe), related(&fresh, probe), "{probe:?}");
        }
    }

    #[test]
    fn remove_unknown_value_is_noop() {
        let mut idx = index(&["abc"]);
        idx.remove_value(Symbol::intern("never-indexed"));
        idx.remove_value(Symbol::intern(""));
        assert_eq!(related(&idx, "abc"), vec!["abc"]);
    }
}
