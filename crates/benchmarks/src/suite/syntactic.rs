//! Tasks 29–32 and 45: purely syntactic tasks (no tables). Still `Lu`
//! benchmarks — the lookup learner cannot express them — but they exercise
//! the `Ls` substrate end-to-end through the unified synthesizer.

use crate::task::{ex, BenchmarkTask, Category};
use sst_tables::Database;

pub(super) fn tasks() -> Vec<BenchmarkTask> {
    vec![
        date_dmy_to_mdy(),
        extract_area_code(),
        name_swap_comma(),
        initials_dotted(),
        log_timestamp_extract(),
    ]
}

fn date_dmy_to_mdy() -> BenchmarkTask {
    BenchmarkTask {
        id: 29,
        name: "date_dmy_to_mdy",
        category: Category::Semantic,
        description: "Swap day and month: `23/12/2010` becomes \
                      `12/23/2010` (pure reordering of number tokens).",
        db: Database::new(),
        rows: vec![
            ex(&["23/12/2010"], "12/23/2010"),
            ex(&["5/11/2009"], "11/5/2009"),
            ex(&["17/6/2011"], "6/17/2011"),
            ex(&["30/1/2008"], "1/30/2008"),
        ],
    }
}

fn extract_area_code() -> BenchmarkTask {
    BenchmarkTask {
        id: 30,
        name: "extract_area_code",
        category: Category::Semantic,
        description: "Extract the area code from `(425) 555-7890`.",
        db: Database::new(),
        rows: vec![
            ex(&["(425) 555-7890"], "425"),
            ex(&["(206) 123-4567"], "206"),
            ex(&["(917) 900-1122"], "917"),
            ex(&["(360) 333-8080"], "360"),
        ],
    }
}

fn name_swap_comma() -> BenchmarkTask {
    BenchmarkTask {
        id: 31,
        name: "name_swap_comma",
        category: Category::Semantic,
        description: "Rewrite `Turing, Alan` as `Alan Turing`.",
        db: Database::new(),
        rows: vec![
            ex(&["Turing, Alan"], "Alan Turing"),
            ex(&["Hopper, Grace"], "Grace Hopper"),
            ex(&["Liskov, Barbara"], "Barbara Liskov"),
            ex(&["Knuth, Donald"], "Donald Knuth"),
        ],
    }
}

fn initials_dotted() -> BenchmarkTask {
    BenchmarkTask {
        id: 32,
        name: "initials_dotted",
        category: Category::Semantic,
        description: "Abbreviate `Alan Mathison Turing` to `A.M.T.` — the \
                      three capital initials with dots.",
        db: Database::new(),
        rows: vec![
            ex(&["Alan Mathison Turing"], "A.M.T."),
            ex(&["Grace Brewster Hopper"], "G.B.H."),
            ex(&["John William Backus"], "J.W.B."),
            ex(&["Frances Elizabeth Allen"], "F.E.A."),
        ],
    }
}

fn log_timestamp_extract() -> BenchmarkTask {
    BenchmarkTask {
        id: 45,
        name: "log_timestamp_extract",
        category: Category::Semantic,
        description: "Pull the clock time out of a log line like \
                      `[2024-01-15 08:32] ERROR`.",
        db: Database::new(),
        rows: vec![
            ex(&["[2024-01-15 08:32] ERROR"], "08:32"),
            ex(&["[2023-11-02 14:05] WARN"], "14:05"),
            ex(&["[2024-06-30 23:59] INFO"], "23:59"),
            ex(&["[2022-03-09 07:45] DEBUG"], "07:45"),
        ],
    }
}
