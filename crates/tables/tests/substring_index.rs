//! Property tests pinning [`SubstringIndex`] to the brute-force scan.
//!
//! [`Table::cells_related_to`] — the full cell scan with two `contains`
//! checks per cell — is the correctness oracle for the §5.3 substring
//! relation. The indexed path ([`Database::cells_related_to`], backed by
//! the q-gram / length-bucket postings of [`SubstringIndex`]) must return
//! exactly the same cell set on every table and probe, including the edge
//! cases the postings treat specially: empty probes and empty cells (never
//! relate), cells shorter than the gram width `q` (side table), multi-byte
//! UTF-8 values (byte-window probes), and repeated values/grams.

use proptest::prelude::*;

use sst_tables::{CellRef, Database, Table, TableId};

/// Alphabet exercising the index's special paths: ASCII letters shared
/// between cells and probes (frequent overlaps), a space, a multi-byte
/// Greek letter, and a character that appears only in probes.
const CELL: &str = "[abψ ]{0,6}";
const PROBE: &str = "[abψ cz]{0,9}";

/// Builds a one-table database whose data cells are the generated strings
/// (any content, including empty and duplicate cells) behind a synthetic
/// unique id column that guarantees a candidate key.
fn db_from_cells(cells: &[Vec<String>]) -> Database {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .enumerate()
        .map(|(i, data)| {
            let mut row = vec![format!("row-id-{i}")];
            row.extend(data.iter().cloned());
            row
        })
        .collect();
    let table = Table::new("T", vec!["Id", "A", "B"], rows).expect("id column is a key");
    Database::from_tables(vec![table]).unwrap()
}

/// The oracle: per-table full scan.
fn scan(db: &Database, probe: &str) -> Vec<(TableId, CellRef)> {
    let mut out: Vec<(TableId, CellRef)> = db
        .iter()
        .flat_map(|(tid, t)| t.cells_related_to(probe).map(move |(cell, _)| (tid, cell)))
        .collect();
    out.sort_unstable();
    out
}

/// The production path: `SubstringIndex` postings.
fn indexed(db: &Database, probe: &str) -> Vec<(TableId, CellRef)> {
    let mut out: Vec<(TableId, CellRef)> = db.cells_related_to(probe).collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The indexed answer set equals the brute-force scan on randomized
    /// tables and probes.
    #[test]
    fn index_matches_bruteforce_scan(
        rows in prop::collection::vec(prop::collection::vec(CELL, 2..3), 1..9),
        probe in PROBE,
    ) {
        let db = db_from_cells(&rows);
        prop_assert_eq!(
            indexed(&db, &probe),
            scan(&db, &probe),
            "probe {:?} over rows {:?}", probe, rows
        );
    }

    /// Probing with a value drawn from the table itself (the common
    /// frontier case: a known string that certainly relates) agrees with
    /// the oracle, as does the empty probe.
    #[test]
    fn index_matches_on_cell_probes(
        rows in prop::collection::vec(prop::collection::vec(CELL, 2..3), 1..9),
        pick in 0usize..64,
    ) {
        let db = db_from_cells(&rows);
        let row = &rows[pick % rows.len()];
        let probe = row[pick % row.len()].clone();
        prop_assert_eq!(indexed(&db, &probe), scan(&db, &probe));
        prop_assert_eq!(indexed(&db, ""), Vec::new());
    }
}

/// Deterministic spot-checks for every length class the postings split on:
/// below-q cells, exactly-q cells, long cells; below-q and long probes.
#[test]
fn length_classes_match_oracle() {
    let db = db_from_cells(&[
        vec!["a".into(), "ab".into()],
        vec!["abc".into(), "abcd".into()],
        vec!["ψψψψ".into(), "".into()],
    ]);
    for probe in ["", "a", "ab", "abc", "abcdabc", "ψ", "ψψψψψ", "zzz"] {
        assert_eq!(indexed(&db, probe), scan(&db, probe), "probe {probe:?}");
    }
}
