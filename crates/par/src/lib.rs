//! Scoped work-stealing pool for deterministic data parallelism.
//!
//! The build container has no registry access, so this crate vendors the
//! small slice of rayon the synthesis hot path needs: fan a fixed slice of
//! independent work items over a bounded set of worker threads and collect
//! the results **in input order**. Determinism is by construction — every
//! item's result is written into its own pre-assigned output slot, so
//! thread scheduling can only change *when* a slot is filled, never *which*
//! value it holds or where it lands.
//!
//! Scheduling is lock-free range splitting (the classic Lazy Binary
//! Splitting shape): each worker owns a contiguous index range packed into
//! one `AtomicU64` (`head` in the high half, `tail` in the low half). The
//! owner claims one index at a time by CAS from the head; an idle worker
//! steals the *upper half* of the fullest remaining range by CAS on the
//! tail and adopts it as its own. Skewed per-item costs therefore rebalance
//! without a central queue, and a uniform workload degenerates to one CAS
//! per item with zero contention.
//!
//! Workers are spawned per call under [`std::thread::scope`], so borrowed
//! (non-`'static`) captures flow into the closure and panics propagate to
//! the caller on join. A [`Pool`] is just the configured width — creating
//! one is free, and `threads <= 1` (or a single item) short-circuits to a
//! plain serial loop with no atomics and no threads, reproducing the
//! serial execution exactly.

use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The machine's available parallelism, probed once per process; `1` when
/// the runtime cannot tell.
pub fn default_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// A scoped worker pool: the configured width plus the scheduling
/// primitives. Holds no threads — each [`Pool::par_map_indexed`] call
/// spawns its workers under a [`std::thread::scope`] and joins them before
/// returning.
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of `threads` workers; `0` means [`default_threads`].
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: if threads == 0 {
                default_threads()
            } else {
                threads
            },
        }
    }

    /// The configured width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True iff calls may actually fan out (`threads > 1`).
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// `f(i, &items[i])` runs exactly once per index, on some worker; the
    /// output vector's slot `i` always holds that call's result, so the
    /// returned value is identical for every pool width (including the
    /// serial `threads <= 1` path). A panic inside `f` aborts the map and
    /// resurfaces on the caller; already-computed results are leaked, never
    /// dropped half-built.
    pub fn par_map_indexed<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let len = items.len();
        let workers = self.threads.min(len);
        // The claiming protocol packs indices into u32 halves of one
        // atomic word; beyond that the serial path is the only sound one
        // (and a 4-billion-item map has bigger problems than threads).
        if workers <= 1 || len > u32::MAX as usize {
            return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }

        let mut results: Vec<MaybeUninit<U>> = Vec::with_capacity(len);
        // SAFETY: `MaybeUninit` needs no initialization; the length is
        // within the just-reserved capacity.
        unsafe { results.set_len(len) };
        let out = SlotWriter {
            ptr: results.as_mut_ptr(),
            len,
        };

        // Pre-split the index space into one contiguous range per worker.
        let ranges: Vec<Range> = (0..workers)
            .map(|w| {
                let start = len * w / workers;
                let end = len * (w + 1) / workers;
                Range::new(start as u32, end as u32)
            })
            .collect();

        std::thread::scope(|scope| {
            for w in 0..workers {
                let ranges = &ranges;
                let out = &out;
                let f = &f;
                scope.spawn(move || {
                    let own = w;
                    loop {
                        // Drain the owned range one index at a time.
                        while let Some(i) = ranges[own].claim_one() {
                            let i = i as usize;
                            // SAFETY: every index is claimed exactly once
                            // across all workers (ranges are disjoint and
                            // stealing removes indices from the victim
                            // before the thief sees them), so each slot is
                            // written once.
                            unsafe { out.write(i, f(i, &items[i])) };
                        }
                        // Steal the upper half of the fullest range.
                        let Some(victim) = (0..workers)
                            .filter(|&v| v != own)
                            .max_by_key(|&v| ranges[v].remaining())
                            .filter(|&v| ranges[v].remaining() > 0)
                        else {
                            break;
                        };
                        match ranges[victim].steal_half() {
                            Some((start, end)) => {
                                // Adopt the stolen interval: the CAS above
                                // removed it from the victim, so publishing
                                // it as our own range hands other thieves a
                                // consistent view.
                                ranges[own].publish(start, end);
                            }
                            None => {
                                // Lost the race; rescan. Another worker is
                                // making progress, so this spin is bounded
                                // by the remaining work.
                                std::hint::spin_loop();
                            }
                        }
                    }
                });
            }
        });

        // All workers joined without panicking: every slot is initialized.
        let mut results = ManuallyDrop::new(results);
        // SAFETY: `MaybeUninit<U>` and `U` share layout; all `len` slots
        // were written exactly once above.
        unsafe { Vec::from_raw_parts(results.as_mut_ptr() as *mut U, len, results.capacity()) }
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new(0)
    }
}

/// A cheap cooperative cancellation handle: caller-triggered
/// ([`CancelToken::cancel`]), deadline-triggered
/// ([`CancelToken::with_deadline`]), or both.
///
/// The default token is *inert* — it holds no allocation and
/// [`is_cancelled`](CancelToken::is_cancelled) is a single `Option` check
/// that branches on `None`, so threading a token through hot loops costs
/// nothing for callers that never set one. Live tokens share one
/// atomically-flagged allocation across clones, so cancelling any clone
/// cancels them all; a deadline latches into the flag the first time it is
/// observed expired, making subsequent checks a plain atomic load.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<CancelInner>>,
}

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// An inert token that can never cancel (the zero-cost default).
    pub fn inert() -> CancelToken {
        CancelToken::default()
    }

    /// A live token with no deadline; it cancels only when
    /// [`cancel`](CancelToken::cancel) is called on any clone.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A live token that reports cancelled once `budget` has elapsed (and
    /// immediately if [`cancel`](CancelToken::cancel) fires first).
    /// Saturates to "never expires by time" if the deadline overflows the
    /// clock.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
            })),
        }
    }

    /// Flags the token (and every clone of it) as cancelled.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// True iff the token was cancelled or its deadline has passed.
    /// Cooperative checkpoints call this at coarse granularity (per
    /// node-pair, per job) — one relaxed load on the warm path.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                // Latch so future checks skip the clock read.
                inner.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// True iff this token can ever cancel (i.e. it is not the inert
    /// default).
    pub fn is_live(&self) -> bool {
        self.inner.is_some()
    }
}

/// Shared pointer to the output slots. Indices are partitioned across
/// workers by the claiming protocol, so concurrent writes never alias.
struct SlotWriter<U> {
    ptr: *mut MaybeUninit<U>,
    len: usize,
}

// SAFETY: workers write disjoint slots (each index claimed once) and the
// buffer outlives the scope; `U: Send` moves the values across threads.
unsafe impl<U: Send> Send for SlotWriter<U> {}
unsafe impl<U: Send> Sync for SlotWriter<U> {}

impl<U> SlotWriter<U> {
    /// Writes slot `i`.
    ///
    /// # Safety
    /// `i < len`, and no other call (on any thread) writes the same `i`.
    unsafe fn write(&self, i: usize, value: U) {
        debug_assert!(i < self.len);
        unsafe { self.ptr.add(i).write(MaybeUninit::new(value)) };
    }
}

/// A contiguous index interval `[head, tail)` packed into one `AtomicU64`
/// (`head` high, `tail` low) so claim and steal are single-word CAS ops.
struct Range(AtomicU64);

impl Range {
    fn new(head: u32, tail: u32) -> Range {
        Range(AtomicU64::new(pack(head, tail)))
    }

    /// Indices left in the interval (a racy snapshot — callers only use it
    /// as a victim-selection heuristic).
    fn remaining(&self) -> u32 {
        let (head, tail) = unpack(self.0.load(Ordering::Relaxed));
        tail.saturating_sub(head)
    }

    /// Claims the next index from the front, if any.
    fn claim_one(&self) -> Option<u32> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(cur);
            if head >= tail {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack(head + 1, tail),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(head),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Steals the upper half (at least one index) of the interval. `None`
    /// when the interval emptied or the CAS raced.
    fn steal_half(&self) -> Option<(u32, u32)> {
        let cur = self.0.load(Ordering::Acquire);
        let (head, tail) = unpack(cur);
        if head >= tail {
            return None;
        }
        let mid = head + (tail - head) / 2;
        self.0
            .compare_exchange(cur, pack(head, mid), Ordering::AcqRel, Ordering::Acquire)
            .ok()
            .map(|_| (mid, tail))
    }

    /// Replaces the interval wholesale (adopting a stolen one). Only the
    /// owner publishes, and only while its own interval is empty, so no
    /// claimable index is ever lost.
    fn publish(&self, head: u32, tail: u32) {
        self.0.store(pack(head, tail), Ordering::Release);
    }
}

fn pack(head: u32, tail: u32) -> u64 {
    ((head as u64) << 32) | tail as u64
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert_eq!(Pool::new(0).threads(), default_threads());
        assert!(!Pool::new(1).is_parallel());
        assert!(Pool::new(2).is_parallel());
    }

    #[test]
    fn serial_and_parallel_agree_on_order() {
        let items: Vec<u64> = (0..997).collect();
        let serial = Pool::new(1).par_map_indexed(&items, |i, &x| x * 3 + i as u64);
        for threads in [2, 3, 8] {
            let par = Pool::new(threads).par_map_indexed(&items, |i, &x| x * 3 + i as u64);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let items: Vec<usize> = (0..512).collect();
        let counters: Vec<AtomicUsize> = items.iter().map(|_| AtomicUsize::new(0)).collect();
        Pool::new(4).par_map_indexed(&items, |i, _| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn skewed_workloads_rebalance() {
        // One pathologically heavy item at the front of the first worker's
        // range: the rest of that range must get stolen and finished.
        let items: Vec<u32> = (0..64).collect();
        let out = Pool::new(4).par_map_indexed(&items, |i, &x| {
            if i == 0 {
                // Busy work, not sleep: keep the test deterministic-ish.
                let mut acc = 0u64;
                for k in 0..2_000_000u64 {
                    acc = acc.wrapping_mul(31).wrapping_add(k);
                }
                x as u64 + (acc & 1)
            } else {
                x as u64
            }
        });
        for (i, &v) in out.iter().enumerate().skip(1) {
            assert_eq!(v, i as u64);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(Pool::new(8).par_map_indexed(&empty, |_, &x| x).is_empty());
        assert_eq!(
            Pool::new(8).par_map_indexed(&[7u8], |i, &x| (i, x)),
            vec![(0, 7)]
        );
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u32, 2, 3];
        let out = Pool::new(16).par_map_indexed(&items, |_, &x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn borrows_non_static_state() {
        let base = [10u64, 20, 30, 40];
        let items: Vec<usize> = (0..base.len()).collect();
        let out = Pool::new(2).par_map_indexed(&items, |_, &i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31, 41]);
    }

    #[test]
    fn cancel_token_states() {
        let inert = CancelToken::default();
        assert!(!inert.is_live());
        assert!(!inert.is_cancelled());
        inert.cancel(); // no-op
        assert!(!inert.is_cancelled());

        let manual = CancelToken::new();
        let clone = manual.clone();
        assert!(manual.is_live());
        assert!(!manual.is_cancelled());
        clone.cancel();
        assert!(manual.is_cancelled(), "cancel propagates across clones");

        let expired = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(expired.is_cancelled());
        assert!(expired.is_cancelled(), "latched after first observation");

        let generous = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!generous.is_cancelled());
    }

    #[test]
    fn range_claim_and_steal_protocol() {
        let r = Range::new(0, 10);
        assert_eq!(r.claim_one(), Some(0));
        let (s, e) = r.steal_half().expect("nonempty");
        // After one claim the interval is [1, 10): thief takes [5, 10).
        assert_eq!((s, e), (5, 10));
        assert_eq!(r.remaining(), 4);
        let mut rest: Vec<u32> = Vec::new();
        while let Some(i) = r.claim_one() {
            rest.push(i);
        }
        assert_eq!(rest, vec![1, 2, 3, 4]);
        assert!(r.steal_half().is_none());
    }
}
