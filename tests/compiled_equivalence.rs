//! Differential harness for the compiled apply plane.
//!
//! `Program::compile` lowers a ranked program tree to linear bytecode
//! (`CompiledProgram`); `run_row` / `run_row_with` / `run_column` execute
//! it without tree recursion, per-row allocation, or table-metadata
//! re-resolution. Every output must be **bit-identical** to interpreting
//! the tree (`Program::run` / `eval_sem`) — including lookup-miss rows
//! (where the paper's semantics yield `Some("")`), undefined rows
//! (`None`), empty and multi-byte-unicode inputs — and `run_column` must
//! agree at every pool width with deterministic row order. This harness
//! replays the full 50-task benchmark suite through the §3.2 convergence
//! loop, compares the top-k compiled programs against the interpreter on
//! every suite row plus a synthesized miss-heavy column, and closes with a
//! property test over randomized rows.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use semantic_strings::benchmarks::{all_tasks, apply_column};
use semantic_strings::core::{converge, default_threads, Pool, Program, SynthesisOptions};
use semantic_strings::prelude::*;

const MAX_EXAMPLES: usize = 3;
const TOP_K: usize = 3;

/// Synthesized-column length per task: enough to cross the parallel
/// plane's chunking threshold on at least some tasks while keeping the
/// 50-task replay fast.
const COLUMN_ROWS: usize = 300;

/// Pool widths every `run_column` output is compared across: serial, two
/// workers, and the machine width when that differs.
fn widths() -> Vec<usize> {
    let wide = default_threads().max(2);
    let mut w = vec![1usize, 2];
    if wide > 2 {
        w.push(wide);
    }
    w
}

/// The interpreter baseline on one row.
fn interpret(p: &Program, row: &[String]) -> Option<String> {
    let refs: Vec<&str> = row.iter().map(String::as_str).collect();
    p.run(&refs)
}

/// Every input row the task's programs are compared on: the full
/// spreadsheet, an all-empty row, a multi-byte unicode row, and a
/// miss-heavy synthesized column drawn from the task's own distribution.
fn probe_rows(task: &semantic_strings::benchmarks::BenchmarkTask) -> Vec<Vec<String>> {
    let arity = task.rows[0].inputs.len();
    let mut rows: Vec<Vec<String>> = task.rows.iter().map(|e| e.inputs.clone()).collect();
    rows.push(vec![String::new(); arity]);
    rows.push(vec!["ψλ ünï-∂é".to_string(); arity]);
    rows.extend(apply_column(task, COLUMN_ROWS));
    rows
}

#[test]
fn compiled_matches_interpreter_on_every_task() {
    let widths = widths();
    for task in all_tasks() {
        let synthesizer = Synthesizer::new(Arc::new(task.db.clone()));
        let report = converge(&synthesizer, &task.rows, MAX_EXAMPLES)
            .unwrap_or_else(|e| panic!("task {} ({}) failed to learn: {e}", task.id, task.name));
        let learned = report
            .learned
            .expect("converge returns a learned set on Ok");
        let rows = probe_rows(&task);
        for (rank, p) in learned.top_k(TOP_K).iter().enumerate() {
            let compiled = p.compile();
            let mut scratch = compiled.new_scratch();
            let expected: Vec<Option<String>> = rows.iter().map(|row| interpret(p, row)).collect();
            for (row, want) in rows.iter().zip(&expected) {
                assert_eq!(
                    &compiled.run_row(row),
                    want,
                    "task {} ({}) rank {rank} run_row on {row:?}",
                    task.id,
                    task.name,
                );
                assert_eq!(
                    compiled.run_row_with(row, &mut scratch),
                    want.as_deref(),
                    "task {} ({}) rank {rank} run_row_with on {row:?}",
                    task.id,
                    task.name,
                );
            }
            for &w in &widths {
                let pool = Pool::new(w);
                assert_eq!(
                    compiled.run_column(&rows, &pool),
                    expected,
                    "task {} ({}) rank {rank} run_column at {w} threads",
                    task.id,
                    task.name,
                );
            }
        }
    }
}

/// A small Example-5-style database for the property test: an indexed
/// lookup whose learned programs mix table probes, substrings and
/// concatenation.
fn prop_programs() -> &'static Vec<Program> {
    static PROGRAMS: OnceLock<Vec<Program>> = OnceLock::new();
    PROGRAMS.get_or_init(|| {
        let comp = Table::new(
            "Comp",
            vec!["Id", "Name"],
            vec![
                vec!["c1", "Microsoft"],
                vec!["c2", "Google"],
                vec!["c3", "Apple"],
                vec!["c4", "ψλ Systems"],
            ],
        )
        .unwrap();
        let db = Arc::new(Database::from_tables(vec![comp]).unwrap());
        let synthesizer =
            Synthesizer::with_options(db, SynthesisOptions::builder().threads(1).build());
        let learned = synthesizer
            .learn(&[
                Example::new(vec!["c2"], "Google"),
                Example::new(vec!["c4"], "ψλ Systems"),
            ])
            .unwrap();
        learned.top_k(TOP_K)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Randomized rows — hits (`c1`..`c4`), near-misses (`c5`..`c9`,
    /// prefixes, garbage) and unicode — agree between the interpreter and
    /// all three compiled entry points.
    #[test]
    fn compiled_matches_interpreter_on_random_rows(
        cell in "[c]{0,1}[1-9abψ é]{0,6}",
        column in prop::collection::vec("[c][1-9]", 0..12),
    ) {
        let pool = Pool::new(2);
        for p in prop_programs() {
            let compiled = p.compile();
            let mut scratch = compiled.new_scratch();
            let row = vec![cell.clone()];
            let want = interpret(p, &row);
            prop_assert_eq!(&compiled.run_row(&row), &want);
            prop_assert_eq!(compiled.run_row_with(&row, &mut scratch), want.as_deref());
            let rows: Vec<Vec<String>> = column.iter().map(|c| vec![c.clone()]).collect();
            let expected: Vec<Option<String>> = rows.iter().map(|r| interpret(p, r)).collect();
            prop_assert_eq!(compiled.run_column(&rows, &pool), expected);
        }
    }
}
