//! Invariants of the evaluation metrics across a sample of the suite —
//! guards for the figure-regeneration harness.

use semantic_strings::benchmarks::{all_tasks, Category};
use semantic_strings::core::Synthesizer;
use semantic_strings::counting::BigUint;
use semantic_strings::lookup::{generate_str_t, LtOptions};

/// A small representative slice (keeps debug-mode runtime reasonable).
fn sample_ids() -> Vec<usize> {
    vec![2, 7, 15, 18, 27, 31, 46]
}

#[test]
fn counts_and_sizes_are_positive_and_consistent() {
    let tasks = all_tasks();
    for id in sample_ids() {
        let task = &tasks[id - 1];
        let s = Synthesizer::new(std::sync::Arc::new(task.db.clone()));
        let learned = s.learn(task.examples(1)).unwrap();
        let count = learned.count();
        let size = learned.size();
        assert!(count > BigUint::zero(), "task {id}: zero count");
        assert!(size > 0, "task {id}: zero size");
        // The log of the count dwarfs the size's order of magnitude on
        // semantic tasks — the succinctness claim of Fig. 11.
        if task.category == Category::Semantic && count.log10() > 10.0 {
            assert!(
                (size as f64) < count.to_f64().max(1e300),
                "task {id}: size should be tiny relative to count"
            );
        }
    }
}

#[test]
fn lt_tasks_count_at_least_one_program_in_lt_alone() {
    let tasks = all_tasks();
    for task in tasks.iter().filter(|t| t.category == Category::Lookup) {
        let e = &task.rows[0];
        let refs: Vec<&str> = e.inputs.iter().map(String::as_str).collect();
        let d = generate_str_t(&task.db, &refs, &e.output, &LtOptions::default());
        assert!(
            d.has_programs(),
            "Lt task {} ({}) has no Lt program for its first example",
            task.id,
            task.name
        );
        assert!(!d.count(task.db.len().max(1)).is_zero());
    }
}

#[test]
fn intersection_never_grows_count() {
    // Counts are monotone under intersection for the *set* of programs;
    // the representation may duplicate, so we check the learned set by
    // behavior instead: the 2-example top program also satisfies example 1.
    let tasks = all_tasks();
    for id in sample_ids() {
        let task = &tasks[id - 1];
        if task.rows.len() < 2 {
            continue;
        }
        let s = Synthesizer::new(std::sync::Arc::new(task.db.clone()));
        let Ok(two) = s.learn(task.examples(2)) else {
            continue;
        };
        let top = two.top().unwrap();
        let refs: Vec<&str> = task.rows[0].inputs.iter().map(String::as_str).collect();
        assert_eq!(
            top.run(&refs).as_deref(),
            Some(task.rows[0].output.as_str()),
            "task {id}: 2-example program violates example 1"
        );
    }
}

#[test]
fn size_metric_counts_every_crate_layer() {
    // A task with tables must have size strictly greater than the same
    // output learned with no tables (the lookup nodes add terminals).
    let tasks = all_tasks();
    let with_tables = &tasks[1]; // company_code_to_name
    let s = Synthesizer::new(std::sync::Arc::new(with_tables.db.clone()));
    let learned = s.learn(with_tables.examples(1)).unwrap();
    let s_empty = Synthesizer::new(std::sync::Arc::new(
        semantic_strings::tables::Database::new(),
    ));
    let learned_empty = s_empty.learn(with_tables.examples(1)).unwrap();
    assert!(learned.size() > learned_empty.size());
}
