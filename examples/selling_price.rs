//! Paper Example 1 (Figure 1): the motivating shopkeeper task.
//!
//! The selling price of an item is `purchase_price + markup% * purchase
//! price`, where the markup comes from one table and the purchase price
//! from another, joined on item id and the *month part* of the selling
//! date. The learned program mixes nested lookups with substring and
//! concatenation operations — the paper's flagship `Lu` transformation.
//!
//! Run with: `cargo run --release --example selling_price`

use semantic_strings::prelude::*;

fn main() {
    let markup_rec = Table::new(
        "MarkupRec",
        vec!["Id", "Name", "Markup"],
        vec![
            vec!["S30", "Stroller", "30%"],
            vec!["B56", "Bib", "45%"],
            vec!["D32", "Diapers", "35%"],
            vec!["W98", "Wipes", "40%"],
            vec!["A46", "Aspirator", "30%"],
        ],
    )
    .expect("valid table");
    let cost_rec = Table::new(
        "CostRec",
        vec!["Id", "Date", "Price"],
        vec![
            vec!["S30", "12/2010", "$145.67"],
            vec!["S30", "11/2010", "$142.38"],
            vec!["B56", "12/2010", "$3.56"],
            vec!["D32", "1/2011", "$21.45"],
            vec!["W98", "4/2009", "$5.12"],
            vec!["A46", "2/2010", "$2.56"],
        ],
    )
    .expect("valid table");
    let db = Database::from_tables(vec![markup_rec, cost_rec]).expect("valid database");

    // The user fills in the first two rows by hand (as in Figure 1).
    let synthesizer = Synthesizer::new(std::sync::Arc::new(db));
    let learned = synthesizer
        .learn(&[
            Example::new(vec!["Stroller", "10/12/2010"], "$145.67+0.30*145.67"),
            Example::new(vec!["Bib", "23/12/2010"], "$3.56+0.45*3.56"),
        ])
        .expect("a consistent transformation exists");

    let program = learned.top().expect("ranked transformation");
    println!("Learned transformation:\n  {program}\n");

    // The tool fills in the bold entries of Figure 1.
    let spreadsheet = [
        (["Diapers", "21/1/2011"], "$21.45+0.35*21.45"),
        (["Wipes", "2/4/2009"], "$5.12+0.40*5.12"),
        (["Aspirator", "23/2/2010"], "$2.56+0.30*2.56"),
    ];
    for (inputs, expected) in &spreadsheet {
        let got = program.run(inputs).expect("evaluates");
        println!("{:<22} -> {got}", inputs.join(" | "));
        assert_eq!(&got, expected);
    }
    println!("\nAll spreadsheet rows match Figure 1.");
}
