//! Theorem 1 / §4.2 scaling study (supports Fig. 4 and the CNF example):
//! consistent-program counts explode exponentially while the data
//! structure stays polynomial (linear here).

use sst_benchmarks::{chain_database, wide_key_database};
use sst_counting::BigUint;
use sst_lookup::{generate_str_t, LtOptions};

fn main() {
    println!("== Chain workload (Example 3 / Fig. 4) ==");
    println!("{:>4} {:>16} {:>8}", "m", "count", "size");
    for m in (2..=18).step_by(2) {
        let (db, example) = chain_database(m);
        let refs: Vec<&str> = example.inputs.iter().map(String::as_str).collect();
        let d = generate_str_t(&db, &refs, &example.output, &LtOptions::default());
        println!(
            "{:>4} {:>16} {:>8}",
            m,
            d.count(db.len()).to_scientific(),
            d.size()
        );
    }

    println!();
    println!("== Wide-key workload (§4.2 CNF example): count = (m+1)^n ==");
    println!(
        "{:>4} {:>4} {:>16} {:>16} {:>8}",
        "n", "m", "count", "expected", "size"
    );
    for (n, m) in [(2usize, 2usize), (3, 3), (4, 4), (6, 5), (8, 8), (10, 10)] {
        let (db, example) = wide_key_database(n, m);
        let refs: Vec<&str> = example.inputs.iter().map(String::as_str).collect();
        let d = generate_str_t(&db, &refs, &example.output, &LtOptions::default());
        let expected = BigUint::from(m as u64 + 1).pow(n as u32);
        println!(
            "{:>4} {:>4} {:>16} {:>16} {:>8}",
            n,
            m,
            d.count(db.len()).to_scientific(),
            expected.to_scientific(),
            d.size()
        );
    }
}
