//! Per-request serving metrics: latency histograms, counters, gauges.
//!
//! Everything is lock-free atomics — the observe path is a handful of
//! relaxed fetch-adds, cheap enough to wrap every request including the
//! memo-served ~0.1 ms learns. `/metrics` renders Prometheus-style text:
//! per-endpoint request/error counters and latency quantiles (estimated
//! from log₂ histograms), the admission in-flight/queued gauges and
//! rejection counter, session lifecycle gauges, and the shared
//! `DagCache` hit/miss counters of every hosted engine (cache
//! effectiveness under live traffic is the serving stack's whole reason
//! to exist, so it is first-class here).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Log₂-bucketed latency histogram over nanoseconds: bucket `i` covers
/// `[2^i, 2^(i+1))` ns, 40 buckets ≈ 18 minutes of range.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; Self::BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    const BUCKETS: usize = 40;

    /// Records one observation.
    pub fn observe(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let bucket = (63 - (ns | 1).leading_zeros() as usize).min(Self::BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed latencies, ns.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (0 < q ≤ 1) in nanoseconds by linear
    /// interpolation inside the holding bucket; 0 with no observations.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let here = bucket.load(Ordering::Relaxed);
            if seen + here >= rank {
                let lo = 1u64 << i;
                let hi = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                };
                let frac = (rank - seen) as f64 / here as f64;
                return lo + ((hi - lo) as f64 * frac) as u64;
            }
            seen += here;
        }
        u64::MAX
    }
}

/// The endpoints the server meters, with their metric label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/{engine}/learn`.
    Learn,
    /// `POST /v1/{engine}/apply`.
    Apply,
    /// `POST /v1/{engine}/sessions`.
    SessionCreate,
    /// `GET /v1/{engine}/sessions/{id}`.
    SessionAttach,
    /// `POST /v1/{engine}/sessions/{id}/examples`.
    AddExamples,
    /// `POST /v1/{engine}/sessions/{id}/inputs`.
    WatchInputs,
    /// `GET /v1/{engine}/sessions/{id}/status`.
    Status,
    /// `POST /v1/{engine}/sessions/{id}/run_column`.
    RunColumn,
    /// `DELETE /v1/{engine}/sessions/{id}`.
    SessionClose,
    /// Everything else (`/metrics`, `/healthz`, unroutable paths).
    Other,
}

impl Endpoint {
    /// Every metered endpoint, in render order.
    pub const ALL: [Endpoint; 10] = [
        Endpoint::Learn,
        Endpoint::Apply,
        Endpoint::SessionCreate,
        Endpoint::SessionAttach,
        Endpoint::AddExamples,
        Endpoint::WatchInputs,
        Endpoint::Status,
        Endpoint::RunColumn,
        Endpoint::SessionClose,
        Endpoint::Other,
    ];

    /// The metric label.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Learn => "learn",
            Endpoint::Apply => "apply",
            Endpoint::SessionCreate => "session_create",
            Endpoint::SessionAttach => "session_attach",
            Endpoint::AddExamples => "add_examples",
            Endpoint::WatchInputs => "watch_inputs",
            Endpoint::Status => "status",
            Endpoint::RunColumn => "run_column",
            Endpoint::SessionClose => "session_close",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        Endpoint::ALL
            .iter()
            .position(|e| *e == self)
            .expect("endpoint is in ALL")
    }
}

/// Per-endpoint counters + histogram.
#[derive(Debug, Default)]
struct EndpointMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: LatencyHistogram,
}

/// The server's metric registry. One instance per server, shared across
/// connection threads.
#[derive(Debug)]
pub struct Metrics {
    endpoints: Vec<EndpointMetrics>,
    rejected: AtomicU64,
    deadline_exceeded: AtomicU64,
    timeouts: AtomicU64,
    panics: AtomicU64,
    retries: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            endpoints: Endpoint::ALL.iter().map(|_| Default::default()).collect(),
            rejected: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// Records one finished request: its endpoint, wall-clock, and
    /// whether it answered 2xx.
    pub fn observe(&self, endpoint: Endpoint, elapsed: Duration, ok: bool) {
        let m = &self.endpoints[endpoint.index()];
        m.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            m.errors.fetch_add(1, Ordering::Relaxed);
        }
        m.latency.observe(elapsed);
    }

    /// Records one admission-control rejection (also observed as an
    /// error by [`Metrics::observe`]).
    pub fn reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests rejected by admission control.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Records one request whose deadline expired (a typed 408 — either a
    /// cooperatively cancelled synthesis or a mid-request read stall).
    pub fn deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Total deadline-exceeded (408) answers.
    pub fn deadline_exceeded_total(&self) -> u64 {
        self.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Records one socket-level timeout (a peer that stalled mid-request
    /// past the read budget).
    pub fn timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Total mid-request socket timeouts.
    pub fn timeouts_total(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Records one handler panic isolated by the per-request
    /// `catch_unwind` boundary (answered as a typed 500).
    pub fn panic_caught(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Total isolated handler panics.
    pub fn panics_total(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Records one request that declared itself a client retry
    /// (`x-retry-attempt` header).
    pub fn retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests that were client retries.
    pub fn retries_total(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total requests observed across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.endpoints
            .iter()
            .map(|m| m.requests.load(Ordering::Relaxed))
            .sum()
    }

    /// Renders the endpoint section of `/metrics` (the caller appends the
    /// gauge and cache sections it owns the state for).
    pub fn render(&self, out: &mut String) {
        use std::fmt::Write;
        out.push_str("# TYPE sst_requests_total counter\n");
        out.push_str("# TYPE sst_request_errors_total counter\n");
        out.push_str("# TYPE sst_request_latency_ns summary\n");
        for endpoint in Endpoint::ALL {
            let m = &self.endpoints[endpoint.index()];
            let requests = m.requests.load(Ordering::Relaxed);
            if requests == 0 {
                continue;
            }
            let label = endpoint.name();
            let _ = writeln!(out, "sst_requests_total{{endpoint=\"{label}\"}} {requests}");
            let _ = writeln!(
                out,
                "sst_request_errors_total{{endpoint=\"{label}\"}} {}",
                m.errors.load(Ordering::Relaxed)
            );
            for (q, qn) in [(0.5, "0.5"), (0.99, "0.99")] {
                let _ = writeln!(
                    out,
                    "sst_request_latency_ns{{endpoint=\"{label}\",quantile=\"{qn}\"}} {}",
                    m.latency.quantile_ns(q)
                );
            }
            let _ = writeln!(
                out,
                "sst_request_latency_ns_sum{{endpoint=\"{label}\"}} {}",
                m.latency.sum_ns()
            );
            let _ = writeln!(
                out,
                "sst_request_latency_ns_count{{endpoint=\"{label}\"}} {}",
                m.latency.count()
            );
        }
        let _ = writeln!(out, "# TYPE sst_rejected_total counter");
        let _ = writeln!(out, "sst_rejected_total {}", self.rejected());
        let _ = writeln!(out, "# TYPE sst_deadline_exceeded_total counter");
        let _ = writeln!(
            out,
            "sst_deadline_exceeded_total {}",
            self.deadline_exceeded_total()
        );
        let _ = writeln!(out, "# TYPE sst_timeouts_total counter");
        let _ = writeln!(out, "sst_timeouts_total {}", self.timeouts_total());
        let _ = writeln!(out, "# TYPE sst_panics_total counter");
        let _ = writeln!(out, "sst_panics_total {}", self.panics_total());
        let _ = writeln!(out, "# TYPE sst_retries_total counter");
        let _ = writeln!(out, "sst_retries_total {}", self.retries_total());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::default();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 10_000] {
            h.observe(Duration::from_micros(us));
        }
        let p50 = h.quantile_ns(0.5);
        // The median observation is 50 µs; its bucket is [32, 64) µs.
        assert!((32_000..64_000).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_ns(0.99);
        // The tail observation is 10 ms; its bucket is [8.4, 16.8) ms.
        assert!(p99 > 8_000_000, "p99 = {p99}");
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.count(), 0);
    }
}
