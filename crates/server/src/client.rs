//! A blocking client for the serving stack, one keep-alive connection
//! per instance.
//!
//! The client speaks exactly what the server serves: HTTP/1.1 with
//! newline-delimited JSON bodies. Non-2xx responses are decoded into the
//! typed [`ServiceError`] they carry, so callers match on
//! [`ClientError::Http`] the same way in-process callers match on the
//! service plane's own errors — an evicted session is
//! `SessionNotFound`, a saturated server is `Overloaded`, never a
//! stringly-typed status code.
//!
//! Instances are intentionally single-connection: drive concurrency by
//! opening more clients (as `traffic_replay` does), not by sharing one.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use sst_core::Example;
use sst_service::{
    decode_cell_lines, decode_lines, encode_lines, encode_row_lines, ApplyRequest, ApplyResponse,
    LearnRequest, ServiceError, SessionStatus, Wire, WireError, WireLearnResponse,
};

use crate::proto::SessionInfo;

/// What a request can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The connection broke or the response framing was malformed.
    Io(io::Error),
    /// The response body did not decode as the expected wire type.
    Decode(WireError),
    /// The server answered non-2xx with a typed error body.
    Http {
        /// The HTTP status.
        status: u16,
        /// The decoded error body.
        error: ServiceError,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "transport: {err}"),
            ClientError::Decode(err) => write!(f, "bad response body: {err}"),
            ClientError::Http { status, error } => write!(f, "HTTP {status}: {error}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(err) => Some(err),
            ClientError::Decode(err) => Some(err),
            ClientError::Http { error, .. } => Some(error),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

impl From<WireError> for ClientError {
    fn from(err: WireError) -> Self {
        ClientError::Decode(err)
    }
}

impl ClientError {
    /// The typed service error, when the server sent one.
    pub fn service_error(&self) -> Option<&ServiceError> {
        match self {
            ClientError::Http { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// One keep-alive connection to a server. See the module docs.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// One raw exchange: returns the status and body. Typed helpers below
    /// are built on this; it is public so tests can hit edge routes.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, String), ClientError> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: sst\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;

        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                ClientError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "malformed status line",
                ))
            })?;

        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside headers",
                )));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        ClientError::Io(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "bad content-length",
                        ))
                    })?;
                }
            }
        }

        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                "response body is not UTF-8",
            ))
        })?;
        Ok((status, body))
    }

    /// Raises non-2xx responses as [`ClientError::Http`] with the typed
    /// error decoded from the body.
    fn checked(&mut self, method: &str, path: &str, body: &str) -> Result<String, ClientError> {
        let (status, body) = self.request(method, path, body)?;
        if (200..300).contains(&status) {
            return Ok(body);
        }
        let error = body
            .lines()
            .find(|line| !line.trim().is_empty())
            .and_then(|line| ServiceError::decode_line(line).ok())
            .unwrap_or_else(|| ServiceError::BadRequest(body.trim().to_string()));
        Err(ClientError::Http { status, error })
    }

    /// `GET /healthz`.
    pub fn healthz(&mut self) -> Result<bool, ClientError> {
        let (status, _) = self.request("GET", "/healthz", "")?;
        Ok(status == 200)
    }

    /// `GET /metrics`: the raw Prometheus text.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        self.checked("GET", "/metrics", "")
    }

    /// `POST /v1/{engine}/learn`: batch learn, request-ordered summaries.
    pub fn learn(
        &mut self,
        engine: &str,
        requests: &[LearnRequest],
    ) -> Result<Vec<WireLearnResponse>, ClientError> {
        let body = self.checked(
            "POST",
            &format!("/v1/{engine}/learn"),
            &encode_lines(requests),
        )?;
        Ok(decode_lines(&body)?)
    }

    /// `POST /v1/{engine}/apply`: batch apply, request-ordered outputs.
    pub fn apply(
        &mut self,
        engine: &str,
        requests: &[ApplyRequest],
    ) -> Result<Vec<ApplyResponse>, ClientError> {
        let body = self.checked(
            "POST",
            &format!("/v1/{engine}/apply"),
            &encode_lines(requests),
        )?;
        Ok(decode_lines(&body)?)
    }

    /// `POST /v1/{engine}/sessions`: a new session seeded with
    /// `examples` (may be empty).
    pub fn create_session(
        &mut self,
        engine: &str,
        examples: &[Example],
    ) -> Result<SessionInfo, ClientError> {
        let body = self.checked(
            "POST",
            &format!("/v1/{engine}/sessions"),
            &encode_lines(examples),
        )?;
        Ok(SessionInfo::decode_line(body.trim_end())?)
    }

    /// `GET /v1/{engine}/sessions/{id}`: attach to a live session.
    pub fn attach(&mut self, engine: &str, session: u64) -> Result<SessionInfo, ClientError> {
        let body = self.checked("GET", &format!("/v1/{engine}/sessions/{session}"), "")?;
        Ok(SessionInfo::decode_line(body.trim_end())?)
    }

    /// `POST /v1/{engine}/sessions/{id}/examples`.
    pub fn add_examples(
        &mut self,
        engine: &str,
        session: u64,
        examples: &[Example],
    ) -> Result<SessionInfo, ClientError> {
        let body = self.checked(
            "POST",
            &format!("/v1/{engine}/sessions/{session}/examples"),
            &encode_lines(examples),
        )?;
        Ok(SessionInfo::decode_line(body.trim_end())?)
    }

    /// `POST /v1/{engine}/sessions/{id}/inputs`.
    pub fn watch_inputs(
        &mut self,
        engine: &str,
        session: u64,
        rows: &[Vec<String>],
    ) -> Result<SessionInfo, ClientError> {
        let body = self.checked(
            "POST",
            &format!("/v1/{engine}/sessions/{session}/inputs"),
            &encode_row_lines(rows),
        )?;
        Ok(SessionInfo::decode_line(body.trim_end())?)
    }

    /// `GET /v1/{engine}/sessions/{id}/status`: learns (server-side,
    /// memoized) and reports convergence.
    pub fn status(&mut self, engine: &str, session: u64) -> Result<SessionStatus, ClientError> {
        let body = self.checked(
            "GET",
            &format!("/v1/{engine}/sessions/{session}/status"),
            "",
        )?;
        Ok(SessionStatus::decode_line(body.trim_end())?)
    }

    /// `POST /v1/{engine}/sessions/{id}/run_column`: top-ranked program
    /// over a whole column.
    pub fn run_column(
        &mut self,
        engine: &str,
        session: u64,
        rows: &[Vec<String>],
    ) -> Result<Vec<Option<String>>, ClientError> {
        let body = self.checked(
            "POST",
            &format!("/v1/{engine}/sessions/{session}/run_column"),
            &encode_row_lines(rows),
        )?;
        Ok(decode_cell_lines(&body)?)
    }

    /// `DELETE /v1/{engine}/sessions/{id}`.
    pub fn close_session(&mut self, engine: &str, session: u64) -> Result<(), ClientError> {
        self.checked("DELETE", &format!("/v1/{engine}/sessions/{session}"), "")?;
        Ok(())
    }
}
