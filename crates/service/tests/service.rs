//! Unit/integration tests of the service plane: session conversations,
//! batch serving, and the shared-database mutation contract.

use std::sync::Arc;

use sst_core::{Example, SynthesisError, SynthesisOptions, Synthesizer};
use sst_service::{Engine, LearnRequest, ServiceError, SessionStatus};
use sst_tables::{Database, Table};

fn comp_table() -> Table {
    Table::new(
        "Comp",
        vec!["Id", "Name"],
        vec![
            vec!["c1", "Microsoft"],
            vec!["c2", "Google"],
            vec!["c3", "Apple"],
            vec!["c4", "Facebook"],
        ],
    )
    .unwrap()
}

fn comp_engine() -> Engine {
    Engine::from_tables(vec![comp_table()]).unwrap()
}

#[test]
fn session_learns_lazily_and_serves_queries() {
    let engine = comp_engine();
    let mut session = engine.session();
    session.add_example(Example::new(vec!["c2"], "Google"));
    assert_eq!(session.run(&["c1"]).unwrap().as_deref(), Some("Microsoft"));
    let paraphrase = session.paraphrase().unwrap();
    assert!(
        paraphrase.to_lowercase().contains("comp") || !paraphrase.is_empty(),
        "paraphrase should describe the program: {paraphrase}"
    );
    assert!(session.count().unwrap() > sst_counting::BigUint::from(1u64));
    assert!(session.size().unwrap() > 0);
    assert!(!session.top_k().unwrap().is_empty());
}

#[test]
fn session_status_follows_the_interaction_loop() {
    let engine = comp_engine();
    let mut session = engine.session();
    session.watch_inputs(
        ["c1", "c2", "c3", "c4"]
            .iter()
            .map(|s| vec![s.to_string()])
            .collect(),
    );

    // No examples: everything needs one.
    match session.status().unwrap() {
        SessionStatus::NeedsExamples { ambiguous_inputs } => {
            assert_eq!(ambiguous_inputs.len(), 4)
        }
        s => panic!("expected NeedsExamples, got {s:?}"),
    }

    // One example: the constant program still disagrees with the lookup
    // on other rows, so some rows stay ambiguous — and §3.2 says the
    // training row itself can never be flagged.
    session.add_example(Example::new(vec!["c2"], "Google"));
    match session.status().unwrap() {
        SessionStatus::NeedsExamples { ambiguous_inputs } => {
            assert!(!ambiguous_inputs.is_empty());
            assert!(!ambiguous_inputs.contains(&vec!["c2".to_string()]));
            // The distinguishing input is one of the flagged rows.
            let d = session.distinguishing_input().unwrap();
            assert!(d.is_some());
        }
        SessionStatus::Converged => panic!("one example should leave ambiguity"),
    }

    // Fixing a flagged row converges the conversation.
    session.add_example(Example::new(vec!["c1"], "Microsoft"));
    assert!(session.status().unwrap().is_converged());
    assert_eq!(session.run(&["c3"]).unwrap().as_deref(), Some("Apple"));
}

#[test]
fn session_converge_with_matches_core_protocol() {
    let truth = vec![
        Example::new(vec!["c1"], "Microsoft"),
        Example::new(vec!["c2"], "Google"),
        Example::new(vec!["c3"], "Apple"),
        Example::new(vec!["c4"], "Facebook"),
    ];
    let engine = comp_engine();
    let mut session = engine.session();
    let outcome = session.converge_with(&truth, 3).unwrap();
    assert!(outcome.converged);

    let baseline = sst_core::converge(
        &Synthesizer::new(Arc::new(Database::from_tables(vec![comp_table()]).unwrap())),
        &truth,
        3,
    )
    .unwrap();
    assert_eq!(outcome.examples_used, baseline.examples_used);
    assert_eq!(outcome.converged, baseline.converged);
    assert_eq!(session.examples().len(), baseline.examples.len());
}

#[test]
fn learn_batch_keeps_request_order_and_isolates_failures() {
    let engine = comp_engine();
    let requests = vec![
        LearnRequest::new(vec![Example::new(vec!["c2"], "Google")]),
        // Unlearnable: contradictory outputs for one input.
        LearnRequest::new(vec![
            Example::new(vec!["c2"], "Google"),
            Example::new(vec!["c2"], "Apple"),
        ]),
        LearnRequest::new(vec![Example::new(vec!["c3"], "Apple")]).with_top_k(1),
        // Empty example set is a per-request error, not a batch failure.
        LearnRequest::new(vec![]),
    ];
    let responses = engine.learn_batch(&requests);
    assert_eq!(responses.len(), 4);
    for (i, r) in responses.iter().enumerate() {
        assert_eq!(r.request, i);
    }
    assert_eq!(
        responses[0].best().unwrap().run(&["c1"]).as_deref(),
        Some("Microsoft")
    );
    assert_eq!(
        responses[1].result.as_ref().err(),
        Some(&ServiceError::Synthesis(
            SynthesisError::NoConsistentProgram
        ))
    );
    assert!(responses[1].top.is_empty());
    assert_eq!(responses[2].top.len(), 1, "per-request top_k override");
    assert_eq!(
        responses[3].result.as_ref().err(),
        Some(&ServiceError::Synthesis(SynthesisError::NoExamples))
    );
}

#[test]
fn learn_batch_is_bit_identical_to_sequential_learns() {
    let engine = comp_engine();
    let examples = [
        vec![Example::new(vec!["c2"], "Google")],
        vec![
            Example::new(vec!["c2"], "Google"),
            Example::new(vec!["c1"], "Microsoft"),
        ],
        vec![Example::new(vec!["c4"], "Facebook")],
    ];
    let requests: Vec<LearnRequest> = examples
        .iter()
        .map(|e| LearnRequest::new(e.clone()))
        .collect();
    let responses = engine.learn_batch(&requests);

    let baseline = Synthesizer::new(Arc::new(Database::from_tables(vec![comp_table()]).unwrap()));
    for (req, resp) in examples.iter().zip(&responses) {
        let expected = baseline.learn(req).unwrap();
        let got = resp.programs().unwrap();
        assert_eq!(got.count(), expected.count());
        assert_eq!(got.size(), expected.size());
        assert_eq!(
            got.top().unwrap().to_string(),
            expected.top().unwrap().to_string()
        );
    }
}

#[test]
fn batch_requests_share_the_warm_plane() {
    let engine = comp_engine();
    let request = LearnRequest::new(vec![Example::new(vec!["c2"], "Google")]);
    engine.learn_batch(std::slice::from_ref(&request));
    let cold = engine.cache_stats();
    assert!(cold.example_misses > 0);
    engine.learn_batch(std::slice::from_ref(&request));
    let warm = engine.cache_stats();
    assert!(
        warm.example_hits > cold.example_hits,
        "second batch should be memo-served: {warm:?}"
    );
}

/// The add-table satellite: one `Engine::add_table` moves the database
/// epoch exactly once no matter how many sessions are live, and the shared
/// DAG plane drops stale structures for *all* of them.
#[test]
fn add_table_bumps_epoch_once_and_invalidates_every_session() {
    // Start with an empty database: the only consistent program is the
    // constant, so both sessions' warm plane entries are "constants-only"
    // structures that MUST be invalidated when the table arrives.
    let engine = Engine::new(Arc::new(Database::new()));
    let mut alice = engine.session();
    let mut bob = engine.session();
    let example = Example::new(vec!["c2"], "Google");
    alice.add_example(example.clone());
    bob.add_example(example.clone());

    assert_eq!(
        alice.run(&["c1"]).unwrap().as_deref(),
        Some("Google"),
        "without tables only the constant program exists"
    );
    assert_eq!(bob.run(&["c1"]).unwrap().as_deref(), Some("Google"));
    // Bob's learn was served from the plane Alice warmed.
    assert!(engine.cache_stats().example_hits > 0);

    let before = engine.db_epoch();
    engine.add_table(comp_table()).unwrap();
    let after = engine.db_epoch();
    assert_ne!(before, after, "add_table must move the epoch");

    // Exactly once: every view of the engine agrees on the single new
    // epoch (the old per-clone Synthesizer mutation pattern gave each
    // clone its own diverging bump), and a second add from any handle
    // moves it again — one bump per mutation, not per session.
    assert_eq!(engine.db_epoch(), after);
    assert_eq!(alice.engine().db_epoch(), after);
    assert_eq!(bob.engine().db_epoch(), after);
    assert_eq!(engine.db().epoch(), after);

    // Both sessions re-learn against the new state: a stale plane would
    // keep serving the constants-only structure.
    assert_eq!(
        alice.run(&["c1"]).unwrap().as_deref(),
        Some("Microsoft"),
        "alice saw a stale DAG plane after add_table"
    );
    assert_eq!(
        bob.run(&["c1"]).unwrap().as_deref(),
        Some("Microsoft"),
        "bob saw a stale DAG plane after add_table"
    );

    // And the post-mutation learns are bit-identical to a fresh engine
    // over the same database.
    let fresh = Engine::new(engine.db());
    let mut fresh_session = fresh.session();
    fresh_session.add_example(example);
    assert_eq!(
        alice.count().unwrap(),
        fresh_session.count().unwrap(),
        "post-mutation session drifted from a fresh engine"
    );
    assert_eq!(alice.size().unwrap(), fresh_session.size().unwrap());

    // Duplicate table names surface as typed errors.
    let err = engine.add_table(comp_table()).unwrap_err();
    assert!(matches!(err, ServiceError::Table(_)));
}

/// The mutation satellite: a row-level write to a table no learned program
/// reads must keep other sessions warm — no re-learn, no re-compile, warm
/// shared-plane entries preserved — while a write to a table the program
/// *does* read still invalidates.
#[test]
fn unrelated_mutation_keeps_sessions_and_plane_warm() {
    let engine = Engine::from_tables(vec![
        comp_table(),
        Table::new(
            "Scratch",
            vec!["K", "V"],
            vec![vec!["zk1", "zv1"], vec!["zk2", "zv2"]],
        )
        .unwrap(),
    ])
    .unwrap();
    let mut session = engine.session();
    session.add_example(Example::new(vec!["c2"], "Google"));
    let col: Vec<Vec<String>> = vec![vec!["c1".into()], vec!["c3".into()]];
    let warm = session.run_column(&col).unwrap();
    assert_eq!(
        warm,
        vec![Some("Microsoft".to_string()), Some("Apple".to_string())]
    );
    let compiled_before = session.compiled_top().unwrap();
    let stats_before = engine.cache_stats();
    let entries_before = engine.cache_entries();
    assert!(entries_before.1 > 0, "the learn warmed the example memo");
    let epoch_before = engine.db_epoch();

    // Insert, update and delete rows of the table the program never
    // reads.
    engine.insert_rows(1, vec![vec!["zk3", "zv3"]]).unwrap();
    engine.update_cell(1, 1, 0, "zv1b").unwrap();
    engine.delete_rows(1, &[1]).unwrap();
    assert_ne!(engine.db_epoch(), epoch_before, "mutations move the epoch");

    // The session's compiled run_column path stays warm: identical
    // outputs, the same compiled allocation, and no fresh generation
    // through the shared plane.
    assert_eq!(session.run_column(&col).unwrap(), warm);
    let compiled_after = session.compiled_top().unwrap();
    assert!(
        Arc::ptr_eq(&compiled_before, &compiled_after),
        "unrelated mutation must not recompile the top program"
    );
    let stats_after = engine.cache_stats();
    assert_eq!(
        stats_after.example_misses, stats_before.example_misses,
        "unrelated mutation must not force a regeneration"
    );

    // The shared plane revalidates without losing a single entry.
    engine.validate_cache();
    assert_eq!(engine.cache_entries(), entries_before);

    // A write to the table the program READS invalidates: the session
    // re-learns against the new state and sees the new cell.
    engine.update_cell(0, 1, 0, "Microsofty").unwrap();
    assert_eq!(
        session.run(&["c1"]).unwrap().as_deref(),
        Some("Microsofty"),
        "related mutation must re-learn"
    );
    assert!(
        engine.cache_stats().example_misses > stats_after.example_misses,
        "related mutation regenerates through the plane"
    );
}

#[test]
fn failed_learns_do_not_disturb_session_state() {
    // Regression: status()/distinguishing_input() used to lose the
    // watched inputs on an Err early-return (mem::take never restored).
    let engine = Engine::new(Arc::new(Database::new()));
    let mut session = engine.session();
    session.watch_inputs(vec![
        vec!["c1".into()],
        vec!["c2".into()],
        vec!["c3".into()],
    ]);
    // Contradictory examples: learning fails.
    session.add_example(Example::new(vec!["c2"], "Google"));
    session.add_example(Example::new(vec!["c2"], "Apple"));
    assert!(session.status().is_err());
    assert!(session.distinguishing_input().is_err());
    assert_eq!(
        session.inputs().len(),
        3,
        "watched inputs must survive a failed learn"
    );
    assert_eq!(session.examples().len(), 2);
}

#[test]
fn zero_top_k_requests_still_materialize_the_best_program() {
    let engine = comp_engine();
    let responses =
        engine.learn_batch(&[
            LearnRequest::new(vec![Example::new(vec!["c2"], "Google")]).with_top_k(0)
        ]);
    assert!(
        responses[0].best().is_some(),
        "a successful learn must carry at least its best program"
    );
}

#[test]
fn sessions_are_independent_conversations() {
    let engine = Engine::from_tables(vec![
        comp_table(),
        Table::new(
            "Ceo",
            vec!["Id", "Boss"],
            vec![
                vec!["c1", "Nadella"],
                vec!["c2", "Pichai"],
                vec!["c3", "Cook"],
                vec!["c4", "Zuckerberg"],
            ],
        )
        .unwrap(),
    ])
    .unwrap();

    let mut names = engine.session();
    let mut bosses = engine.session();
    names.add_example(Example::new(vec!["c2"], "Google"));
    bosses.add_example(Example::new(vec!["c2"], "Pichai"));

    assert_eq!(names.run(&["c3"]).unwrap().as_deref(), Some("Apple"));
    assert_eq!(bosses.run(&["c3"]).unwrap().as_deref(), Some("Cook"));
    assert_eq!(names.examples().len(), 1);
    assert_eq!(bosses.examples().len(), 1);
}

#[test]
fn engine_options_flow_into_sessions() {
    let options = SynthesisOptions::builder()
        .threads(1)
        .dag_cache(true)
        .top_k(2)
        .parallel_edge_product_min(64)
        .build();
    let engine = Engine::with_options(
        Arc::new(Database::from_tables(vec![comp_table()]).unwrap()),
        options,
    );
    assert_eq!(engine.options().top_k, 2);
    assert_eq!(engine.options().parallel_edge_product_min, 64);
    let mut session = engine.session();
    session.add_example(Example::new(vec!["c2"], "Google"));
    assert!(session.top_k().unwrap().len() <= 2);
}

#[test]
fn replacing_an_example_at_the_same_count_invalidates_the_learn_cache() {
    // Regression: the session learn-cache was keyed by (db_epoch,
    // examples.len()), so removing an example and adding a different one
    // at the same count served the stale learned set. The key is now a
    // content hash of the example sequence.
    let engine = Engine::from_tables(vec![Table::new(
        "Prod",
        vec!["Id", "Name", "Price"],
        vec![
            vec!["p1", "Laptop", "980"],
            vec!["p2", "Phone", "650"],
            vec!["p3", "Tablet", "430"],
        ],
    )
    .unwrap()])
    .unwrap();
    let mut session = engine.session();

    session.add_example(Example::new(vec!["p1"], "Laptop"));
    assert_eq!(session.run(&["p2"]).unwrap().as_deref(), Some("Phone"));

    // Same example count (one), different content: the session must
    // re-learn, not replay the Name-column programs.
    let removed = session.remove_example(0);
    assert_eq!(removed.output, "Laptop");
    session.add_example(Example::new(vec!["p1"], "980"));
    assert_eq!(session.run(&["p2"]).unwrap().as_deref(), Some("650"));

    // And the same holds for in-place replacement via clear + re-add.
    session.clear_examples();
    session.add_example(Example::new(vec!["p2"], "Phone"));
    assert_eq!(session.run(&["p3"]).unwrap().as_deref(), Some("Tablet"));

    // Reordering two examples also changes the hash (the sequence is
    // order-sensitive), which must not poison correctness: the learned
    // set is semantically identical, just re-derived.
    session.clear_examples();
    session.add_example(Example::new(vec!["p1"], "Laptop"));
    session.add_example(Example::new(vec!["p2"], "Phone"));
    let forward = session.run(&["p3"]).unwrap();
    session.clear_examples();
    session.add_example(Example::new(vec!["p2"], "Phone"));
    session.add_example(Example::new(vec!["p1"], "Laptop"));
    assert_eq!(session.run(&["p3"]).unwrap(), forward);
}

/// A snapshot taken after learning restores into a fresh engine that
/// answers the same requests identically — and answers them *warm*: the
/// replays are served from the restored memo plane, not re-derived.
#[test]
fn snapshot_restore_round_trips_and_serves_warm_replays() {
    let path = std::env::temp_dir().join(format!(
        "sst-service-snap-roundtrip-{}.snap",
        std::process::id()
    ));
    let engine = comp_engine();
    let examples = vec![
        Example::new(vec!["c2"], "Google"),
        Example::new(vec!["c3"], "Apple"),
    ];
    let cold = engine.learn(&examples).unwrap();
    let bytes = engine.snapshot_to(&path).unwrap();
    assert!(bytes > 0);

    let restored = Engine::restore_from(&path, SynthesisOptions::default()).unwrap();
    let before = restored.cache_stats();
    assert_eq!(before.example_hits + before.intersect_hits, 0);
    let warm = restored.learn(&examples).unwrap();
    assert_eq!(warm.count(), cold.count());
    assert_eq!(warm.size(), cold.size());
    for (a, b) in cold.top_ranked().iter().zip(warm.top_ranked().iter()) {
        assert_eq!(a.run(&["c1"]), b.run(&["c1"]));
        assert_eq!(a.run(&["c4"]), b.run(&["c4"]));
    }
    let after = restored.cache_stats();
    assert!(
        after.example_hits > 0,
        "replay must be memo-served: {after:?}"
    );
    std::fs::remove_file(&path).ok();
}

/// A snapshot taken under one generation configuration refuses to restore
/// into a differently configured engine — typed, not silent unsoundness.
#[test]
fn snapshot_restore_refuses_mismatched_options() {
    let path = std::env::temp_dir().join(format!(
        "sst-service-snap-options-{}.snap",
        std::process::id()
    ));
    let engine = comp_engine();
    engine.learn(&[Example::new(vec!["c2"], "Google")]).unwrap();
    engine.snapshot_to(&path).unwrap();

    let other = SynthesisOptions::builder().max_depth(7).build();
    let err = Engine::restore_from(&path, other).unwrap_err();
    assert!(matches!(err, ServiceError::Snapshot(_)), "got {err:?}");
    assert!(err.to_string().contains("fingerprint"), "got {err}");

    // Non-generation knobs (threads, top_k) are outside the fingerprint.
    let reranked = SynthesisOptions::builder().threads(1).top_k(3).build();
    Engine::restore_from(&path, reranked).unwrap();
    std::fs::remove_file(&path).ok();
}

/// Corrupting any byte of a snapshot yields a typed [`ServiceError`],
/// never a panic or a silently wrong engine.
#[test]
fn snapshot_restore_rejects_corruption_typed() {
    let path = std::env::temp_dir().join(format!(
        "sst-service-snap-corrupt-{}.snap",
        std::process::id()
    ));
    let engine = comp_engine();
    engine.learn(&[Example::new(vec!["c2"], "Google")]).unwrap();
    engine.snapshot_to(&path).unwrap();
    let good = std::fs::read(&path).unwrap();

    // Flip one payload byte: checksum mismatch.
    let mut bad = good.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x40;
    std::fs::write(&path, &bad).unwrap();
    let err = Engine::restore_from(&path, SynthesisOptions::default()).unwrap_err();
    assert!(matches!(err, ServiceError::Snapshot(_)), "got {err:?}");

    // Truncate: typed error too.
    std::fs::write(&path, &good[..good.len() / 3]).unwrap();
    let err = Engine::restore_from(&path, SynthesisOptions::default()).unwrap_err();
    assert!(matches!(err, ServiceError::Snapshot(_)), "got {err:?}");

    // Missing file.
    std::fs::remove_file(&path).ok();
    let err = Engine::restore_from(&path, SynthesisOptions::default()).unwrap_err();
    assert!(matches!(err, ServiceError::Snapshot(_)), "got {err:?}");
}
