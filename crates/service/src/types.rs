//! The typed service boundary: request/response/error/status structs.
//!
//! These are deliberately plain owned data — no lifetimes, no handles into
//! engine internals beyond the `Arc`-shared learned results — so a future
//! wire boundary (HTTP/IPC serving) can serialize them without reshaping
//! the API. Everything observable through them is bit-identical to direct
//! `Synthesizer` calls (pinned by `tests/service_equivalence.rs`).

use std::fmt;

use sst_core::{Example, LearnedPrograms, Program, SynthesisError};
use sst_tables::TableError;

/// Failures of the service plane: synthesis failures (no examples, arity
/// mismatch, no consistent program), database mutations gone wrong
/// (duplicate table names, ragged rows, ...), and the wire-serving
/// conditions a remote front door must type precisely — an evicted or
/// unknown session, admission-control overload (the HTTP 429 body), and
/// malformed wire payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Learning failed.
    Synthesis(SynthesisError),
    /// A table mutation ([`crate::Engine::add_table`]) failed.
    Table(TableError),
    /// The named session does not exist — never created, closed, or
    /// evicted after its idle deadline passed.
    SessionNotFound(u64),
    /// Admission control rejected the request: the execution slots were
    /// all busy and the bounded wait queue was full. Carries the limits in
    /// force so clients can reason about backoff.
    Overloaded {
        /// Requests executing when the rejection happened.
        in_flight: usize,
        /// Requests already waiting for a slot.
        queued: usize,
    },
    /// The request could not be decoded (malformed JSON, an unknown
    /// field shape, an undecodable body line).
    BadRequest(String),
    /// The request's deadline expired before the work completed: the
    /// in-flight synthesis was cooperatively cancelled (caches left
    /// valid, partial results never inserted) and the request answers
    /// HTTP 408. Carries the budget that was in force, in milliseconds.
    DeadlineExceeded {
        /// The request's time budget, in milliseconds.
        budget_ms: u64,
    },
    /// The request body exceeded the server's frame cap (HTTP 413).
    /// Carries the cap in force, in bytes, so clients can re-chunk.
    PayloadTooLarge {
        /// The maximum accepted body size, in bytes.
        limit: usize,
    },
    /// The server contained a crash while handling the request (HTTP
    /// 500): a handler panicked and was isolated by the per-request
    /// `catch_unwind` boundary. The engine state stays consistent; the
    /// message is diagnostic only.
    Internal(String),
    /// A snapshot persist or restore failed: io error, corrupt or
    /// truncated file, version mismatch, or an options fingerprint that
    /// does not match the engine being restored.
    Snapshot(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Synthesis(e) => write!(f, "synthesis failed: {e}"),
            ServiceError::Table(e) => write!(f, "table mutation failed: {e}"),
            ServiceError::SessionNotFound(id) => {
                write!(
                    f,
                    "session {id} not found (never created, closed, or evicted)"
                )
            }
            ServiceError::Overloaded { in_flight, queued } => write!(
                f,
                "server overloaded: {in_flight} requests in flight, {queued} queued"
            ),
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServiceError::DeadlineExceeded { budget_ms } => {
                write!(f, "deadline exceeded: request budget was {budget_ms} ms")
            }
            ServiceError::PayloadTooLarge { limit } => {
                write!(f, "payload too large: body cap is {limit} bytes")
            }
            ServiceError::Internal(msg) => write!(f, "internal server error: {msg}"),
            ServiceError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Synthesis(e) => Some(e),
            ServiceError::Table(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SynthesisError> for ServiceError {
    fn from(e: SynthesisError) -> Self {
        ServiceError::Synthesis(e)
    }
}

impl From<TableError> for ServiceError {
    fn from(e: TableError) -> Self {
        ServiceError::Table(e)
    }
}

impl From<sst_arena::SnapshotError> for ServiceError {
    fn from(e: sst_arena::SnapshotError) -> Self {
        ServiceError::Snapshot(e.to_string())
    }
}

/// One independent learning request for [`crate::Engine::learn_batch`]:
/// a complete example set (the batch path is for tasks whose examples are
/// already known — interactive refinement goes through
/// [`crate::Session`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearnRequest {
    /// The input-output examples to learn from.
    pub examples: Vec<Example>,
    /// How many top-ranked programs the response materializes; `None`
    /// falls back to the engine's configured
    /// [`top_k`](sst_core::SynthesisOptions::top_k).
    pub top_k: Option<usize>,
}

impl LearnRequest {
    /// A request over `examples` with the engine-default `top_k`.
    pub fn new(examples: Vec<Example>) -> Self {
        LearnRequest {
            examples,
            top_k: None,
        }
    }

    /// Overrides how many ranked programs the response carries (clamped
    /// to at least 1, like the options builder — a successful learn always
    /// materializes its best program).
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k.max(1));
        self
    }
}

/// The answer to one [`LearnRequest`]. Responses come back in request
/// order regardless of how the batch was scheduled (the pool writes each
/// result into its pre-assigned slot); `request` names the slot explicitly
/// so a wire boundary can stream responses out of order later.
#[derive(Debug, Clone)]
pub struct LearnResponse {
    /// Index of the request this answers.
    pub request: usize,
    /// The full learned program set, or why learning failed.
    pub result: Result<LearnedPrograms, ServiceError>,
    /// The materialized top-ranked programs (the request's `top_k` or the
    /// engine default), ascending cost; empty when learning failed.
    pub top: Vec<Program>,
}

impl LearnResponse {
    /// The learned set, if learning succeeded.
    pub fn programs(&self) -> Option<&LearnedPrograms> {
        self.result.as_ref().ok()
    }

    /// The single best program, if any.
    pub fn best(&self) -> Option<&Program> {
        self.top.first()
    }
}

/// One independent batch-apply request for [`crate::Engine::apply_batch`]:
/// learn from `examples`, compile the top-ranked program, run it over every
/// row of `rows` (the paper's deployment shape — a learned transformation
/// filling an entire spreadsheet column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyRequest {
    /// The input-output examples defining the transformation.
    pub examples: Vec<Example>,
    /// The input rows to transform.
    pub rows: Vec<Vec<String>>,
}

impl ApplyRequest {
    /// A request applying the program learned from `examples` to `rows`.
    pub fn new(examples: Vec<Example>, rows: Vec<Vec<String>>) -> Self {
        ApplyRequest { examples, rows }
    }
}

/// The answer to one [`ApplyRequest`]: per-row outputs in input order
/// (`None` where the program is undefined on a row), or why learning
/// failed. Like [`LearnResponse`], `request` names the slot explicitly.
#[derive(Debug, Clone)]
pub struct ApplyResponse {
    /// Index of the request this answers.
    pub request: usize,
    /// One output per input row, or the learning failure.
    pub result: Result<Vec<Option<String>>, ServiceError>,
}

impl ApplyResponse {
    /// The per-row outputs, if learning succeeded.
    pub fn outputs(&self) -> Option<&[Option<String>]> {
        self.result.as_deref().ok()
    }
}

/// Where a [`crate::Session`] stands in the §3.2 protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionStatus {
    /// Every watched input row gets one agreed output from the top-ranked
    /// programs: the conversation has converged (§3.2 — nothing left to
    /// highlight).
    Converged,
    /// The session needs more examples: these watched input rows are
    /// *ambiguous* — the top-ranked consistent programs produce two or
    /// more distinct outputs on them (§3.2's highlighting rule). Fixing
    /// any one of them (usually the first) splits the hypothesis space
    /// fastest. With no examples at all, every watched row is reported.
    NeedsExamples {
        /// The ambiguous input rows, in spreadsheet order.
        ambiguous_inputs: Vec<Vec<String>>,
    },
}

impl SessionStatus {
    /// True iff the session has converged.
    pub fn is_converged(&self) -> bool {
        matches!(self, SessionStatus::Converged)
    }
}
