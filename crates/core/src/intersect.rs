//! `Intersect_u`: intersecting two `Du` structures (§5.3).
//!
//! The procedure is the union of the `Intersect_t` and `Intersect_s` rules
//! plus the four bridging rules of the paper:
//!
//! * top-level DAGs intersect like automata (`Dag × Dag`), with atom source
//!   handles intersected by *lookup-node pairing*;
//! * node pairs intersect their generalized lookups (`Var`/`Var` by index,
//!   `Select`/`Select` by column+table, conditions by candidate key);
//! * predicate DAGs (`C = ẽ_s`) intersect recursively with the same node
//!   pairing, closing the mutual recursion.
//!
//! Pairing is lazy (only pairs referenced from the intersected top DAG or
//! some predicate DAG are created) and the result is pruned for
//! productivity, which is where pairs whose only derivations are infinite
//! disappear.

use std::sync::Arc;

use sst_lookup::NodeId;
use sst_par::{CancelToken, Pool};
use sst_syntactic::{
    assemble_product_dag, intersect_dags_memo, intersect_dags_memo_unpruned, product_edge_atoms,
    product_path_masks, AtomSet, Dag, PosMemo, PosSet, ProductMasks,
};
use sst_tables::IntMap;

use crate::dstruct::{GenCondU, GenLookupU, GenPredU, SemDStruct, SemNode};

/// Intersects two `Du` structures. The result's `top` is `None` when no
/// common program survives.
///
/// Three optimizations prune the §5.3 edge product, each invisible after
/// the final productivity prune (pinned against
/// [`intersect_du_unpruned`], the naive oracle, by the property tests):
///
/// * edge pairs off all source→target paths of the product skip their
///   O(atoms²) expansion (structural reachability masks in the syntactic
///   layer);
/// * node pairs where either side's program set is empty are never
///   created — they can only ever be unproductive;
/// * nested predicate-DAG intersections are memoized on the `Arc`
///   identity of the operand DAGs, which generation shares per repeated
///   key value — one row pair's predicate work serves every row pair
///   carrying the same values.
pub fn intersect_du(a: &SemDStruct, b: &SemDStruct) -> SemDStruct {
    intersect_du_impl(a, b, Tuning::OPTIMIZED, &CancelToken::default())
}

/// The unpruned, unmemoized `Intersect_u`: every edge pair expands its
/// atom products and every referenced node pair is materialized, exactly
/// as the pre-cache implementation did. Kept as the correctness oracle for
/// the differential property tests; counts, sizes and ranking must match
/// [`intersect_du`] bit for bit.
pub fn intersect_du_unpruned(a: &SemDStruct, b: &SemDStruct) -> SemDStruct {
    intersect_du_impl(a, b, Tuning::ORACLE, &CancelToken::default())
}

/// Default estimated top-level edge-pair product below which the parallel
/// plane is not worth its setup (discovery pass + two `thread::scope`
/// spawns): small intersections run the serial path, which is observably
/// identical. Tunable per synthesizer via
/// `SynthesisOptions::builder().parallel_edge_product_min(..)` — the
/// constant is untuned on real multi-core hardware (ROADMAP follow-on).
pub const DEFAULT_PARALLEL_EDGE_PRODUCT_MIN: usize = 256;

/// [`intersect_du`] dispatched through a worker pool: node-pair
/// intersections fan out across `pool`'s threads when the pool is parallel
/// and the product is big enough to amortize the setup, and fall back to
/// the serial path otherwise. Dispatches at the default threshold
/// [`DEFAULT_PARALLEL_EDGE_PRODUCT_MIN`]; [`intersect_du_tuned`] takes an
/// explicit one.
///
/// Every observable of the result — program counts, structure size,
/// ranking, evaluation — is **bit-identical at every pool width** (pinned
/// by `tests/parallel_equivalence.rs` and the property tests): the
/// parallel plane computes the same node pairs, the same program products
/// and the same DAG intersections, merging them in a discovery order fixed
/// before any worker runs. Only the internal numbering of the output's
/// lookup nodes may differ from the serial path, and no observable
/// depends on it (counts and sizes are order-free sums; ranked programs
/// carry no node ids).
pub fn intersect_du_with(a: &SemDStruct, b: &SemDStruct, pool: &Pool) -> SemDStruct {
    intersect_du_tuned(a, b, pool, DEFAULT_PARALLEL_EDGE_PRODUCT_MIN)
}

/// [`intersect_du_with`] at an explicit parallel-dispatch threshold: the
/// parallel plane runs only when the top-level edge-pair product reaches
/// `parallel_edge_product_min`. The threshold trades scheduling overhead
/// against fan-out and **cannot change any observable** — both paths are
/// pinned bit-identical — so it is exposed as a perf knob
/// (`SynthesisOptions::parallel_edge_product_min`).
pub fn intersect_du_tuned(
    a: &SemDStruct,
    b: &SemDStruct,
    pool: &Pool,
    parallel_edge_product_min: usize,
) -> SemDStruct {
    intersect_du_budgeted(
        a,
        b,
        pool,
        parallel_edge_product_min,
        &CancelToken::default(),
    )
}

/// [`intersect_du_tuned`] under a cooperative [`CancelToken`], checked at
/// coarse granularity (per node pair on the serial path; per discovery
/// step, per row unit and per wave on the parallel plane). When the token
/// fires mid-intersection the return value is an *empty* structure that the
/// caller must discard after checking the token — cancellation is a
/// control signal, not a result. An un-fired token changes nothing:
/// results stay bit-identical to [`intersect_du_tuned`].
pub fn intersect_du_budgeted(
    a: &SemDStruct,
    b: &SemDStruct,
    pool: &Pool,
    parallel_edge_product_min: usize,
    cancel: &CancelToken,
) -> SemDStruct {
    let worthwhile = match (&a.top, &b.top) {
        (Some(ta), Some(tb)) => ta.edges.len() * tb.edges.len() >= parallel_edge_product_min,
        _ => false,
    };
    if pool.is_parallel() && worthwhile {
        intersect_du_parallel_budgeted(a, b, pool, cancel)
    } else {
        intersect_du_impl(a, b, Tuning::OPTIMIZED, cancel)
    }
}

/// Which product-pruning optimizations run (see [`intersect_du`]).
#[derive(Clone, Copy)]
struct Tuning {
    prune_product: bool,
    skip_empty_pairs: bool,
    memo_nested: bool,
}

impl Tuning {
    const OPTIMIZED: Tuning = Tuning {
        prune_product: true,
        skip_empty_pairs: true,
        memo_nested: true,
    };
    const ORACLE: Tuning = Tuning {
        prune_product: false,
        skip_empty_pairs: false,
        memo_nested: false,
    };
}

fn intersect_du_impl(
    a: &SemDStruct,
    b: &SemDStruct,
    tuning: Tuning,
    cancel: &CancelToken,
) -> SemDStruct {
    let (Some(ta), Some(tb)) = (&a.top, &b.top) else {
        return SemDStruct::default();
    };
    let mut memo: IntMap<(NodeId, NodeId), NodeId> = IntMap::default();
    memo.reserve(a.len().min(b.len()) * 2);
    // One position-intersection memo for the whole session: the top DAG and
    // every nested predicate DAG share position vectors from the same
    // generation caches, and `a`/`b` outlive the session, keeping the
    // identity keys valid.
    let pos_memo = PosMemo::new();
    let mut ctx = Ctx {
        a,
        b,
        tuning,
        out_nodes: Vec::new(),
        memo,
        dag_memo: IntMap::default(),
        pos_memo: &pos_memo,
        cancel,
    };
    let top = ctx.intersect_top(ta, tb);
    if cancel.is_cancelled() {
        // The product was abandoned mid-flight; hand back an empty
        // structure for the caller to discard.
        return SemDStruct::default();
    }
    let mut out = SemDStruct {
        nodes: ctx.out_nodes,
        top,
    };
    if !out.prune() {
        out.top = None;
    }
    out
}

/// Memo entry for nested predicate-DAG intersections: the two pinned
/// operand `Arc`s (their addresses are the key, so they must stay alive)
/// plus the cached result.
type NestedDagEntry = (Arc<Dag<NodeId>>, Arc<Dag<NodeId>>, Option<Arc<Dag<NodeId>>>);

struct Ctx<'a> {
    a: &'a SemDStruct,
    b: &'a SemDStruct,
    tuning: Tuning,
    out_nodes: Vec<SemNode>,
    memo: IntMap<(NodeId, NodeId), NodeId>,
    dag_memo: IntMap<(usize, usize), NestedDagEntry>,
    pos_memo: &'a PosMemo,
    /// Cooperative cancellation, checked once per source pair (the
    /// per-node-pair granularity of the §5.3 recursion). A fired token
    /// makes every remaining pairing refuse, so products die quickly; the
    /// (invalid) partial result is discarded by the impl's final check.
    cancel: &'a CancelToken,
}

impl Ctx<'_> {
    /// Source-handle intersection for the DAG product: pairs the two
    /// lookup nodes, short-circuiting pairs that cannot be productive
    /// (either side has no generalized program) so their recursive
    /// intersection work never happens.
    fn pair_src(&mut self, na: NodeId, nb: NodeId) -> Option<NodeId> {
        if self.cancel.is_cancelled() {
            return None;
        }
        if self.tuning.skip_empty_pairs
            && (self.a.node(na).progs.is_empty() || self.b.node(nb).progs.is_empty())
        {
            return None;
        }
        Some(self.pair(na, nb))
    }

    fn intersect_top(
        &mut self,
        ta: &Arc<Dag<NodeId>>,
        tb: &Arc<Dag<NodeId>>,
    ) -> Option<Arc<Dag<NodeId>>> {
        self.intersect_dag_pair(ta, tb, false)
    }

    /// Intersects two (possibly shared) DAGs with lookup-node pairing.
    /// With `memoize` (nested predicate DAGs), the result is cached on the
    /// operands' `Arc` identity: generation hands every repeated key value
    /// the same allocation, and re-intersecting identical operands only
    /// replays `pair` memo hits, so serving the cache is exact.
    fn intersect_dag_pair(
        &mut self,
        da: &Arc<Dag<NodeId>>,
        db: &Arc<Dag<NodeId>>,
        memoize: bool,
    ) -> Option<Arc<Dag<NodeId>>> {
        let memoize = memoize && self.tuning.memo_nested;
        let key = (Arc::as_ptr(da) as usize, Arc::as_ptr(db) as usize);
        if memoize {
            if let Some((_, _, hit)) = self.dag_memo.get(&key) {
                return hit.clone();
            }
        }
        let pos_memo = self.pos_memo;
        let out = if self.tuning.prune_product {
            intersect_dags_memo(
                &**da,
                &**db,
                &mut |x: &NodeId, y: &NodeId| self.pair_src(*x, *y),
                pos_memo,
            )
        } else {
            intersect_dags_memo_unpruned(
                &**da,
                &**db,
                &mut |x: &NodeId, y: &NodeId| self.pair_src(*x, *y),
                pos_memo,
            )
        }
        .map(Arc::new);
        if memoize {
            self.dag_memo
                .insert(key, (Arc::clone(da), Arc::clone(db), out.clone()));
        }
        out
    }

    fn pair(&mut self, na: NodeId, nb: NodeId) -> NodeId {
        if let Some(&id) = self.memo.get(&(na, nb)) {
            return id;
        }
        let id = NodeId(self.out_nodes.len() as u32);
        let (a, b) = (self.a, self.b);
        let mut vals = a.node(na).vals.clone();
        vals.extend(b.node(nb).vals.iter().copied());
        self.out_nodes.push(SemNode {
            vals,
            progs: Vec::new(),
        });
        self.memo.insert((na, nb), id);

        // `a`/`b` are shared borrows independent of `self`: iterate the
        // program lists (and their nested DAGs) in place — the seed deep-
        // cloned both lists for every created pair.
        let mut progs: Vec<GenLookupU> = Vec::new();
        for ga in &a.node(na).progs {
            for gb in &b.node(nb).progs {
                if let Some(g) = self.intersect_prog(ga, gb) {
                    progs.push(g);
                }
            }
        }
        self.out_nodes[id.0 as usize].progs = progs;
        id
    }

    fn intersect_prog(&mut self, ga: &GenLookupU, gb: &GenLookupU) -> Option<GenLookupU> {
        match (ga, gb) {
            (GenLookupU::Var(i), GenLookupU::Var(j)) if i == j => Some(GenLookupU::Var(*i)),
            (
                GenLookupU::Select {
                    col: c1,
                    table: t1,
                    conds: conds1,
                },
                GenLookupU::Select {
                    col: c2,
                    table: t2,
                    conds: conds2,
                },
            ) if c1 == c2 && t1 == t2 => {
                let mut conds = Vec::new();
                for x in conds1.iter() {
                    let Some(y) = conds2.iter().find(|y| y.key == x.key) else {
                        continue;
                    };
                    if let Some(c) = self.intersect_cond(x, y) {
                        conds.push(c);
                    }
                }
                if conds.is_empty() {
                    None
                } else {
                    Some(GenLookupU::Select {
                        col: *c1,
                        table: *t1,
                        conds: Arc::new(conds),
                    })
                }
            }
            _ => None,
        }
    }

    fn intersect_cond(&mut self, x: &GenCondU, y: &GenCondU) -> Option<GenCondU> {
        if x.preds.len() != y.preds.len() {
            return None;
        }
        let mut preds = Vec::with_capacity(x.preds.len());
        for (p, q) in x.preds.iter().zip(&y.preds) {
            if p.col != q.col {
                return None;
            }
            let dag = self.intersect_dag_pair(&p.dag, &q.dag, true)?;
            preds.push(GenPredU { col: p.col, dag });
        }
        Some(GenCondU { key: x.key, preds })
    }
}

// ---------------------------------------------------------------------------
// The parallel intersection plane.
//
// The serial `Ctx` interleaves three mutually recursive computations: DAG
// products call `pair_src` to mint node pairs, minting a pair eagerly
// intersects its program products, and program products intersect nested
// predicate DAGs — back to the first step. The key structural fact that
// unlocks parallelism is that the recursion only ever passes *ids*
// downward: a DAG product needs the id (and input-emptiness) of each
// referenced node pair, never its intersected programs, and a node pair's
// programs need the nested DAG *results*, never other pairs' programs. The
// plane therefore splits into
//
//   1. a serial **discovery** pass that walks the structure (edge pairs
//      under the product masks, atom-kind-compatible source pairs, program
//      products, condition alignment) and assigns every node pair and
//      every distinct nested DAG pair a dense id — no position
//      intersections, no atom hashing, no program work;
//   2. a parallel wave of **DAG-pair intersections**, each an independent
//      pure product over the discovery ids, probing a pre-warmed
//      frozen position memo lock-free;
//   3. a parallel wave of **per-pair program products**, each reading only
//      the input structures and the wave-2 results;
//   4. a serial assembly in discovery order, then the usual productivity
//      prune.
//
// The serial path's one result-dependent control decision — a condition's
// predicate DAGs intersect left to right and stop at the first empty
// result — is replayed by running the phases in *waves*: a condition's
// later DAG pairs wait as a `PredChain` continuation that each wave's
// results advance, so a DAG pair is computed iff the serial recursion
// would have computed it. Work, pairs, program lists and orders, DAG
// edges and atom orders all match the serial computation under the id
// bijection; only the output's internal node numbering differs, and no
// observable depends on it.
// ---------------------------------------------------------------------------

/// One nested-DAG intersection work unit: the two operand DAGs (identity-
/// deduplicated, matching the serial `Arc`-keyed memo) plus their product
/// masks from discovery. A job that is not `live` (the source pair cannot
/// structurally reach the target pair) intersects to `None` without work.
struct DagJob {
    a: Arc<Dag<NodeId>>,
    b: Arc<Dag<NodeId>>,
    masks: ProductMasks,
    live: bool,
}

/// A pinned pair of position-vector handles: a position-memo key whose
/// addresses stay valid while the pair is held.
type PosPair = (Arc<Vec<PosSet>>, Arc<Vec<PosSet>>);

/// A pair of predicate-DAG operands (one nested intersection).
type DagPair = (Arc<Dag<NodeId>>, Arc<Dag<NodeId>>);

/// The pre-warmed, read-only position memo of one parallel intersection
/// session: every distinct position pair the discovery found, intersected
/// ahead of phase 2c (in parallel, without locks on the probe side). The
/// `_pins` keep the keyed `Arc`s alive, exactly like the serial
/// [`PosMemo`]'s entries. Pairs outside the pre-warm set (impossible by
/// construction — discovery enumerates a superset of the products'
/// `SubStr × SubStr` combinations) fall back to an uncached computation,
/// which returns the same value a memo hit would.
struct FrozenPosMemo {
    map: IntMap<(usize, usize), Option<Arc<Vec<PosSet>>>>,
    _pins: Vec<PosPair>,
}

impl sst_syntactic::PosIntersect for FrozenPosMemo {
    fn intersect_pos(
        &self,
        a: &Arc<Vec<PosSet>>,
        b: &Arc<Vec<PosSet>>,
    ) -> Option<Arc<Vec<PosSet>>> {
        match self
            .map
            .get(&(Arc::as_ptr(a) as usize, Arc::as_ptr(b) as usize))
        {
            Some(hit) => hit.clone(),
            None => {
                debug_assert!(false, "position pair missed the pre-warm");
                let v = sst_syntactic::intersect_pos_lists(a, b);
                if v.is_empty() {
                    None
                } else {
                    Some(Arc::new(v))
                }
            }
        }
    }
}

/// One *row* of one job's edge-pair product: the `ai`-th edge of the
/// A-side DAG, paired against every on-path B-side edge by the worker
/// that claims it. Row granularity keeps the unit list proportional to
/// `E_a` instead of `E_a × E_b` (big products reach 10⁵–10⁶ edge pairs,
/// and per-pair bookkeeping would dwarf the cheap products), while the
/// work-stealing pool still balances uneven rows.
struct RowUnit {
    job: u32,
    ai: u32,
}

/// The discovery pass state: dense ids for node pairs and DAG-pair jobs,
/// plus everything the parallel phases consume — the flattened edge-pair
/// unit list (job-major, edge-pair order) and the distinct position-vector
/// pairs the products will intersect. One walk per job collects all three,
/// so the edge-pair product is enumerated exactly once serially.
struct Discovery<'a> {
    a: &'a SemDStruct,
    b: &'a SemDStruct,
    pair_ids: IntMap<(NodeId, NodeId), NodeId>,
    pairs: Vec<(NodeId, NodeId)>,
    job_ids: IntMap<(usize, usize), u32>,
    jobs: Vec<DagJob>,
    units: Vec<RowUnit>,
    /// Per job: its `units` range (aligned with `jobs`; filled at walk
    /// time, and jobs are walked in creation order).
    job_units: Vec<(usize, usize)>,
    pos_keys: IntMap<(usize, usize), u32>,
    pos_pairs: Vec<PosPair>,
    /// Predicate-chain continuations (see [`PredChain`]): conditions whose
    /// later predicate DAG pairs are only enqueued once every earlier one
    /// intersected nonempty, replaying the serial early exit.
    conts: Vec<PredChain>,
}

/// One condition's zipped predicate DAG pairs, intersected lazily left to
/// right: `next` is the first pair not yet enqueued, unlocked only when
/// pair `next - 1`'s result is nonempty. This is what keeps the parallel
/// plane's *work* identical to the serial path — without it, a condition
/// whose first predicate dies would still pay for its remaining
/// predicates' DAG products.
struct PredChain {
    chain: Vec<DagPair>,
    next: usize,
}

/// Registers the node pair `(na, nb)` exactly when the serial `pair_src`
/// would mint it (both sides have programs). Free function so `walk_job`
/// can call it while holding borrows of other `Discovery` fields.
fn ref_pair(
    a: &SemDStruct,
    b: &SemDStruct,
    pair_ids: &mut IntMap<(NodeId, NodeId), NodeId>,
    pairs: &mut Vec<(NodeId, NodeId)>,
    na: NodeId,
    nb: NodeId,
) {
    if a.node(na).progs.is_empty() || b.node(nb).progs.is_empty() {
        return;
    }
    if pair_ids.contains_key(&(na, nb)) {
        return;
    }
    let id = NodeId(pairs.len() as u32);
    pair_ids.insert((na, nb), id);
    pairs.push((na, nb));
}

impl<'a> Discovery<'a> {
    fn new(a: &'a SemDStruct, b: &'a SemDStruct) -> Self {
        Discovery {
            a,
            b,
            pair_ids: IntMap::default(),
            pairs: Vec::new(),
            job_ids: IntMap::default(),
            jobs: Vec::new(),
            units: Vec::new(),
            job_units: Vec::new(),
            pos_keys: IntMap::default(),
            pos_pairs: Vec::new(),
            conts: Vec::new(),
        }
    }

    /// Registers a DAG pair by operand identity (the serial nested memo's
    /// key), computing its masks on first sight.
    fn add_job(&mut self, da: &Arc<Dag<NodeId>>, db: &Arc<Dag<NodeId>>) {
        let key = (Arc::as_ptr(da) as usize, Arc::as_ptr(db) as usize);
        if self.job_ids.contains_key(&key) {
            return;
        }
        let masks = product_path_masks(&**da, &**db);
        let live = masks.source_on_path(&**da, &**db);
        self.job_ids.insert(key, self.jobs.len() as u32);
        self.jobs.push(DagJob {
            a: Arc::clone(da),
            b: Arc::clone(db),
            masks,
            live,
        });
    }

    /// Walks one DAG-pair job's on-path edge pairs once, collecting the
    /// three things the parallel phases need: the referenced node pairs
    /// (every atom-kind-compatible source pair on an on-path edge pair is
    /// exactly one future `src_intersect` call), the per-row work units,
    /// and the distinct position-vector pairs of the `SubStr × SubStr`
    /// products.
    ///
    /// The sweep itself touches every edge pair only for a mask check and
    /// one boolean store: edges are first collapsed into *profiles*
    /// (distinct source-set + position-set combinations — generation DAGs
    /// reuse a handful across thousands of edges), the sweep marks which
    /// profile pairs co-occur on an on-path edge pair, and the source and
    /// position products then run once per seen profile pair. This is
    /// exact — a profile pair is marked iff some on-path edge pair carries
    /// it — and keeps discovery from redoing O(E² · sources) work the
    /// products will do in parallel anyway.
    fn walk_job(&mut self, idx: usize) {
        let Discovery {
            a,
            b,
            pair_ids,
            pairs,
            jobs,
            units,
            job_units,
            pos_keys,
            pos_pairs,
            ..
        } = self;
        debug_assert_eq!(job_units.len(), idx, "jobs walked in creation order");
        let start = units.len();
        let job = &jobs[idx];
        if job.live {
            let n2 = job.b.num_nodes as usize;
            let (a_prof, a_ids) = edge_profiles(&job.a);
            let (b_prof, b_ids) = edge_profiles(&job.b);
            let mut seen = vec![false; a_prof.len() * b_prof.len()];
            for (i, &(a1, b1)) in job.a.edges.keys().enumerate() {
                let mut row_used = false;
                for (j, &(a2, b2)) in job.b.edges.keys().enumerate() {
                    if job.masks.fwd[a1 as usize * n2 + a2 as usize]
                        && job.masks.bwd[b1 as usize * n2 + b2 as usize]
                    {
                        row_used = true;
                        seen[a_ids[i] as usize * b_prof.len() + b_ids[j] as usize] = true;
                    }
                }
                if row_used {
                    units.push(RowUnit {
                        job: idx as u32,
                        ai: i as u32,
                    });
                }
            }
            for (pi, pa) in a_prof.iter().enumerate() {
                for (pj, pb) in b_prof.iter().enumerate() {
                    if !seen[pi * b_prof.len() + pj] {
                        continue;
                    }
                    for &x in &pa.whole {
                        for &y in &pb.whole {
                            ref_pair(a, b, pair_ids, pairs, x, y);
                        }
                    }
                    for &x in &pa.substr {
                        for &y in &pb.substr {
                            ref_pair(a, b, pair_ids, pairs, x, y);
                        }
                    }
                    for boundary in 0..2 {
                        for p1 in &pa.pos[boundary] {
                            for p2 in &pb.pos[boundary] {
                                let key = (Arc::as_ptr(p1) as usize, Arc::as_ptr(p2) as usize);
                                pos_keys.entry(key).or_insert_with(|| {
                                    pos_pairs.push((Arc::clone(p1), Arc::clone(p2)));
                                    (pos_pairs.len() - 1) as u32
                                });
                            }
                        }
                    }
                }
            }
        }
        job_units.push((start, units.len()));
    }

    /// Walks one node pair's program products, registering the nested DAG
    /// pairs the serial `intersect_cond` reaches — *lazily*: the serial
    /// path intersects a condition's predicates left to right and stops at
    /// the first empty result, so only each chain's first DAG pair is
    /// enqueued now; the rest wait as a [`PredChain`] continuation that
    /// the wave loop advances one link per nonempty result, exactly
    /// replaying the serial early exit.
    fn walk_pair(&mut self, idx: usize) {
        let (na, nb) = self.pairs[idx];
        let (a, b) = (self.a, self.b);
        for ga in &a.node(na).progs {
            for gb in &b.node(nb).progs {
                let (
                    GenLookupU::Select {
                        col: c1,
                        table: t1,
                        conds: conds1,
                    },
                    GenLookupU::Select {
                        col: c2,
                        table: t2,
                        conds: conds2,
                    },
                ) = (ga, gb)
                else {
                    continue;
                };
                if c1 != c2 || t1 != t2 {
                    continue;
                }
                for x in conds1.iter() {
                    let Some(y) = conds2.iter().find(|y| y.key == x.key) else {
                        continue;
                    };
                    if x.preds.len() != y.preds.len() {
                        continue;
                    }
                    // The serial path intersects the zipped predicate DAGs
                    // in order, stopping at a column mismatch (before
                    // touching the mismatched pair) or an empty result.
                    let chain: Vec<DagPair> = x
                        .preds
                        .iter()
                        .zip(&y.preds)
                        .take_while(|(p, q)| p.col == q.col)
                        .map(|(p, q)| (Arc::clone(&p.dag), Arc::clone(&q.dag)))
                        .collect();
                    let Some((first_a, first_b)) = chain.first() else {
                        continue;
                    };
                    self.add_job(first_a, first_b);
                    if chain.len() > 1 {
                        self.conts.push(PredChain { chain, next: 1 });
                    }
                }
            }
        }
    }
}

/// Distinct atom sources (by kind — `Whole` only pairs with `Whole`,
/// `SubStr` with `SubStr`; other combinations never call `src_intersect`)
/// and distinct `SubStr` position-vector handles (`pos[0]` = starts,
/// `pos[1]` = ends) of one edge's atoms.
struct EdgeInfo<'j> {
    whole: Vec<NodeId>,
    substr: Vec<NodeId>,
    pos: [Vec<&'j Arc<Vec<PosSet>>>; 2],
}

fn edge_info(atoms: &[AtomSet<NodeId>]) -> EdgeInfo<'_> {
    let mut info = EdgeInfo {
        whole: Vec::new(),
        substr: Vec::new(),
        pos: [Vec::new(), Vec::new()],
    };
    for atom in atoms {
        match atom {
            AtomSet::ConstStr(_) => {}
            AtomSet::Whole(n) => {
                if !info.whole.contains(n) {
                    info.whole.push(*n);
                }
            }
            AtomSet::SubStr { src, p1, p2 } => {
                if !info.substr.contains(src) {
                    info.substr.push(*src);
                }
                if !info.pos[0].iter().any(|x| Arc::ptr_eq(x, p1)) {
                    info.pos[0].push(p1);
                }
                if !info.pos[1].iter().any(|x| Arc::ptr_eq(x, p2)) {
                    info.pos[1].push(p2);
                }
            }
        }
    }
    info
}

/// Collapses a DAG's edges into distinct [`EdgeInfo`] profiles plus the
/// per-edge profile id (edge order). Generation DAGs reference the same
/// few sources and shared position vectors across thousands of edges, so
/// the profile count stays tiny — which is what lets discovery run source
/// and position products per profile pair instead of per edge pair.
fn edge_profiles(dag: &Dag<NodeId>) -> (Vec<EdgeInfo<'_>>, Vec<u32>) {
    let mut profiles: Vec<EdgeInfo<'_>> = Vec::new();
    let mut by_key: std::collections::HashMap<Vec<u64>, u32> = std::collections::HashMap::new();
    let mut ids: Vec<u32> = Vec::with_capacity(dag.edges.len());
    for atoms in dag.edges.values() {
        let info = edge_info(atoms);
        let mut key: Vec<u64> = Vec::with_capacity(
            info.whole.len() + info.substr.len() + info.pos[0].len() + info.pos[1].len() + 3,
        );
        key.extend(info.whole.iter().map(|n| n.0 as u64));
        key.push(u64::MAX);
        key.extend(info.substr.iter().map(|n| n.0 as u64));
        key.push(u64::MAX);
        key.extend(info.pos[0].iter().map(|p| Arc::as_ptr(p) as u64));
        key.push(u64::MAX);
        key.extend(info.pos[1].iter().map(|p| Arc::as_ptr(p) as u64));
        let next = profiles.len() as u32;
        let id = *by_key.entry(key).or_insert(next);
        if id == next {
            profiles.push(info);
        }
        ids.push(id);
    }
    (profiles, ids)
}

/// The parallel plane itself, with no size threshold — [`intersect_du_with`]
/// is the dispatching entry point. Public so the differential harnesses can
/// drive the discovery-scheduled path on structures of every size; results
/// are observably identical to [`intersect_du`] at any pool width.
pub fn intersect_du_parallel(a: &SemDStruct, b: &SemDStruct, pool: &Pool) -> SemDStruct {
    intersect_du_parallel_budgeted(a, b, pool, &CancelToken::default())
}

/// [`intersect_du_parallel`] under a cooperative [`CancelToken`]. The
/// checkpoints are coarse: per discovery step, per wave, and per row unit
/// inside the worker closures. A worker that observes the token returns a
/// trivial (empty) result for its unit — every output slot is still
/// written exactly once, keeping the pool's slot protocol sound — and the
/// wave loop then abandons the session, returning an empty structure for
/// the caller to discard.
fn intersect_du_parallel_budgeted(
    a: &SemDStruct,
    b: &SemDStruct,
    pool: &Pool,
    cancel: &CancelToken,
) -> SemDStruct {
    let (Some(ta), Some(tb)) = (&a.top, &b.top) else {
        return SemDStruct::default();
    };

    // Phase 1 + 2, interleaved in waves. Serial discovery walks jobs and
    // pairs in creation order (the pair graph may be cyclic; the id maps
    // make every walk run once); whenever the walk frontier drains, the
    // newly discovered work runs in parallel — distinct position-pair
    // intersections first (frozen into the lock-free memo), then the
    // edge-pair atom products, then the per-job DAG reassembly — and the
    // fresh results advance the predicate-chain continuations, which may
    // unlock further jobs for the next wave. Waves replay the serial
    // path's laziness exactly: a predicate DAG pair is computed iff the
    // serial recursion would have computed it. Typical sessions need one
    // or two waves (chains are candidate-key width, rarely > 2).
    let mut disc = Discovery::new(a, b);
    disc.add_job(ta, tb);
    let (mut next_job, mut next_pair) = (0usize, 0usize);
    let mut pos_memo = FrozenPosMemo {
        map: IntMap::default(),
        _pins: Vec::new(),
    };
    let mut result_of: IntMap<(usize, usize), Option<Arc<Dag<NodeId>>>> = IntMap::default();
    let mut dag_results: Vec<Option<Arc<Dag<NodeId>>>> = Vec::new();
    let (mut done_pos, mut done_units, mut done_jobs) = (0usize, 0usize, 0usize);
    loop {
        // Serial discovery to the current fixpoint (checking the token
        // once per walked job/pair — each walk is one bounded unit).
        while next_job < disc.jobs.len() || next_pair < disc.pairs.len() {
            if cancel.is_cancelled() {
                return SemDStruct::default();
            }
            if next_job < disc.jobs.len() {
                disc.walk_job(next_job);
                next_job += 1;
            } else {
                disc.walk_pair(next_pair);
                next_pair += 1;
            }
        }
        if cancel.is_cancelled() {
            return SemDStruct::default();
        }
        if done_jobs == disc.jobs.len() {
            break;
        }

        // Wave position pre-warm: the distinct position pairs the new
        // units introduced, intersected in parallel and frozen — the
        // product workers below probe the memo without any lock, and
        // every hit aliases one canonical allocation chosen before they
        // run (deterministic identity).
        let new_pos = &disc.pos_pairs[done_pos..];
        let pos_results: Vec<Option<Arc<Vec<PosSet>>>> =
            pool.par_map_indexed(new_pos, |_, (pa, pb)| {
                // Cancelled workers fill their slot with a trivial value;
                // the wave loop discards the whole session right after.
                if cancel.is_cancelled() {
                    return None;
                }
                let v = sst_syntactic::intersect_pos_lists(pa, pb);
                if v.is_empty() {
                    None
                } else {
                    Some(Arc::new(v))
                }
            });
        for ((pa, pb), res) in new_pos.iter().zip(pos_results) {
            pos_memo
                .map
                .insert((Arc::as_ptr(pa) as usize, Arc::as_ptr(pb) as usize), res);
        }
        pos_memo
            ._pins
            .extend(disc.pos_pairs[done_pos..].iter().cloned());
        done_pos = disc.pos_pairs.len();

        // Wave atom products — the O(atoms²) hashing-and-pairing work. A
        // unit is one A-side edge row: the worker sweeps that row's
        // on-path B-side edges and returns the surviving `(product edge,
        // atoms)` list in B-edge order. Row granularity keeps the unit
        // list small while still splitting one oversized product
        // (typically the top-level DAG's) across all workers; the source
        // callback is a pure read of the discovery tables (plus the
        // input-emptiness check the serial `pair_src` applies), so workers
        // share nothing mutable.
        let jobs = &disc.jobs;
        let pair_ids = &disc.pair_ids;
        type EdgeTables<'j> = (
            Vec<&'j [AtomSet<NodeId>]>,
            Vec<&'j [AtomSet<NodeId>]>,
            Vec<(u32, u32)>,
            Vec<(u32, u32)>,
        );
        // Only this wave's jobs need tables: a unit created by walking job
        // `j` always has `unit.job == j >= done_jobs` (jobs are walked in
        // creation order, and all pre-wave jobs were walked already).
        let edge_tables: Vec<EdgeTables<'_>> = jobs[done_jobs..]
            .iter()
            .map(|job| {
                (
                    job.a.edges.values().map(Vec::as_slice).collect(),
                    job.b.edges.values().map(Vec::as_slice).collect(),
                    job.a.edges.keys().copied().collect(),
                    job.b.edges.keys().copied().collect(),
                )
            })
            .collect();
        let new_units = &disc.units[done_units..];
        let pos_memo_ref = &pos_memo;
        type RowProducts = Vec<((u64, u64), Vec<AtomSet<NodeId>>)>;
        let unit_atoms: Vec<RowProducts> = pool.par_map_indexed(new_units, |_, unit| {
            // Per-row-unit cancellation checkpoint: a trivial return keeps
            // the slot protocol sound, and the wave loop discards the
            // session before any trivial row can reach the output.
            if cancel.is_cancelled() {
                return Vec::new();
            }
            let job = &jobs[unit.job as usize];
            let (a_slices, b_slices, a_keys, b_keys) = &edge_tables[unit.job as usize - done_jobs];
            let i = unit.ai as usize;
            let (a1, b1) = a_keys[i];
            let n2 = job.b.num_nodes as usize;
            let mut src = |x: &NodeId, y: &NodeId| -> Option<NodeId> {
                if a.node(*x).progs.is_empty() || b.node(*y).progs.is_empty() {
                    return None;
                }
                Some(*pair_ids.get(&(*x, *y)).expect("pair discovered in phase 1"))
            };
            let mut out: RowProducts = Vec::new();
            for (j, &(a2, b2)) in b_keys.iter().enumerate() {
                if !(job.masks.fwd[a1 as usize * n2 + a2 as usize]
                    && job.masks.bwd[b1 as usize * n2 + b2 as usize])
                {
                    continue;
                }
                if let Some(atoms) =
                    product_edge_atoms(a_slices[i], b_slices[j], &mut src, pos_memo_ref)
                {
                    out.push((
                        (
                            a1 as u64 * job.b.num_nodes as u64 + a2 as u64,
                            b1 as u64 * job.b.num_nodes as u64 + b2 as u64,
                        ),
                        atoms,
                    ));
                }
            }
            out
        });
        if cancel.is_cancelled() {
            return SemDStruct::default();
        }
        done_units = disc.units.len();

        // Reassemble each new job's product DAG from its rows, in row and
        // B-edge order (the serial edge-pair order), then prune —
        // identical to the serial tail.
        let mut unit_results = unit_atoms.into_iter();
        for (job, &(start, end)) in jobs.iter().zip(&disc.job_units).skip(done_jobs) {
            let res = if job.live {
                let mut edges: std::collections::BTreeMap<(u64, u64), Vec<AtomSet<NodeId>>> =
                    std::collections::BTreeMap::new();
                for _ in start..end {
                    for (key, atoms) in unit_results.next().expect("one result per row unit") {
                        edges.insert(key, atoms);
                    }
                }
                assemble_product_dag(&*job.a, &*job.b, edges).map(Arc::new)
            } else {
                None
            };
            result_of.insert(
                (Arc::as_ptr(&job.a) as usize, Arc::as_ptr(&job.b) as usize),
                res.clone(),
            );
            dag_results.push(res);
        }
        done_jobs = disc.jobs.len();

        // Advance the predicate chains: each nonempty result unlocks the
        // chain's next DAG pair (possibly a brand-new job for the next
        // wave); an empty result kills the chain, exactly like the serial
        // `?` early exit.
        let mut still_pending: Vec<PredChain> = Vec::new();
        for mut cont in std::mem::take(&mut disc.conts) {
            loop {
                let (prev_a, prev_b) = &cont.chain[cont.next - 1];
                let key = (Arc::as_ptr(prev_a) as usize, Arc::as_ptr(prev_b) as usize);
                match result_of.get(&key) {
                    Some(Some(_)) => {
                        let (na, nb) = {
                            let (x, y) = &cont.chain[cont.next];
                            (Arc::clone(x), Arc::clone(y))
                        };
                        disc.add_job(&na, &nb);
                        cont.next += 1;
                        if cont.next >= cont.chain.len() {
                            break; // chain fully enqueued
                        }
                    }
                    Some(None) => break, // chain dead: serial would stop here
                    None => {
                        // Waiting on a job enqueued this wave but not yet
                        // computed (it was added after the cut) — next
                        // wave will resolve it.
                        still_pending.push(cont);
                        break;
                    }
                }
            }
        }
        disc.conts = still_pending;
    }
    let pairs = disc.pairs;

    // Phase 3: every node pair's program product in parallel, nested DAG
    // intersections served from phase 2.
    let progs: Vec<Vec<GenLookupU>> = pool.par_map_indexed(&pairs, |_, &(na, nb)| {
        if cancel.is_cancelled() {
            return Vec::new();
        }
        let mut out: Vec<GenLookupU> = Vec::new();
        for ga in &a.node(na).progs {
            for gb in &b.node(nb).progs {
                if let Some(g) = intersect_prog_precomputed(ga, gb, &result_of) {
                    out.push(g);
                }
            }
        }
        out
    });

    if cancel.is_cancelled() {
        return SemDStruct::default();
    }

    // Phase 4: assemble in discovery order and prune, exactly as serial.
    let nodes: Vec<SemNode> = pairs
        .iter()
        .zip(progs)
        .map(|(&(na, nb), progs)| {
            let mut vals = a.node(na).vals.clone();
            vals.extend(b.node(nb).vals.iter().copied());
            SemNode { vals, progs }
        })
        .collect();
    let mut out = SemDStruct {
        nodes,
        top: dag_results[0].clone(),
    };
    if !out.prune() {
        out.top = None;
    }
    out
}

/// The serial `intersect_prog`, with nested DAG intersections looked up
/// from the phase-2 results instead of recursing.
fn intersect_prog_precomputed(
    ga: &GenLookupU,
    gb: &GenLookupU,
    results: &IntMap<(usize, usize), Option<Arc<Dag<NodeId>>>>,
) -> Option<GenLookupU> {
    match (ga, gb) {
        (GenLookupU::Var(i), GenLookupU::Var(j)) if i == j => Some(GenLookupU::Var(*i)),
        (
            GenLookupU::Select {
                col: c1,
                table: t1,
                conds: conds1,
            },
            GenLookupU::Select {
                col: c2,
                table: t2,
                conds: conds2,
            },
        ) if c1 == c2 && t1 == t2 => {
            let mut conds = Vec::new();
            for x in conds1.iter() {
                let Some(y) = conds2.iter().find(|y| y.key == x.key) else {
                    continue;
                };
                if let Some(c) = intersect_cond_precomputed(x, y, results) {
                    conds.push(c);
                }
            }
            if conds.is_empty() {
                None
            } else {
                Some(GenLookupU::Select {
                    col: *c1,
                    table: *t1,
                    conds: Arc::new(conds),
                })
            }
        }
        _ => None,
    }
}

fn intersect_cond_precomputed(
    x: &GenCondU,
    y: &GenCondU,
    results: &IntMap<(usize, usize), Option<Arc<Dag<NodeId>>>>,
) -> Option<GenCondU> {
    if x.preds.len() != y.preds.len() {
        return None;
    }
    let mut preds = Vec::with_capacity(x.preds.len());
    for (p, q) in x.preds.iter().zip(&y.preds) {
        if p.col != q.col {
            return None;
        }
        let key = (Arc::as_ptr(&p.dag) as usize, Arc::as_ptr(&q.dag) as usize);
        let dag = results
            .get(&key)
            .expect("DAG pair discovered in phase 1")
            .clone()?;
        preds.push(GenPredU { col: p.col, dag });
    }
    Some(GenCondU { key: x.key, preds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_sem;
    use crate::generate::{generate_str_u, LuOptions};
    use crate::rank::LuRankWeights;
    use sst_tables::{Database, Table};

    fn comp_db() -> Database {
        Database::from_tables(vec![Table::new(
            "Comp",
            vec!["Id", "Name"],
            vec![
                vec!["c1", "Microsoft"],
                vec!["c2", "Google"],
                vec!["c3", "Apple"],
                vec!["c4", "Facebook"],
                vec!["c5", "IBM"],
                vec!["c6", "Xerox"],
            ],
        )
        .unwrap()])
        .unwrap()
    }

    fn gen(db: &Database, inputs: &[&str], output: &str) -> SemDStruct {
        generate_str_u(db, inputs, output, &LuOptions::default())
    }

    #[test]
    fn intersection_keeps_common_lookup_program() {
        let db = comp_db();
        let d1 = gen(&db, &["c2"], "Google");
        let d2 = gen(&db, &["c5"], "IBM");
        let inter = intersect_du(&d1, &d2);
        assert!(inter.has_programs());
        let prog = LuRankWeights::default().best(&inter, 2).unwrap();
        let tokens = LuOptions::default().syntactic.token_set;
        assert_eq!(
            eval_sem(&prog.expr, &db, &["c2"], &tokens).as_deref(),
            Some("Google")
        );
        assert_eq!(
            eval_sem(&prog.expr, &db, &["c6"], &tokens).as_deref(),
            Some("Xerox")
        );
    }

    #[test]
    fn intersection_of_incompatible_examples_dies() {
        let db = comp_db();
        // No program can map c2 -> Google and c2 -> Apple.
        let d1 = gen(&db, &["c2"], "Google");
        let d2 = gen(&db, &["c2"], "Apple");
        let inter = intersect_du(&d1, &d2);
        assert!(!inter.has_programs());
    }

    #[test]
    fn const_program_survives_when_outputs_equal() {
        let db = comp_db();
        let d1 = gen(&db, &["c2"], "same");
        let d2 = gen(&db, &["c5"], "same");
        let inter = intersect_du(&d1, &d2);
        assert!(inter.has_programs());
        let prog = LuRankWeights::default().best(&inter, 2).unwrap();
        let tokens = LuOptions::default().syntactic.token_set;
        assert_eq!(
            eval_sem(&prog.expr, &db, &["c1"], &tokens).as_deref(),
            Some("same")
        );
    }

    #[test]
    fn intersection_size_does_not_blow_up() {
        // Fig. 12(b)'s claim: intersection typically shrinks the structure.
        let db = comp_db();
        let d1 = gen(&db, &["c4 c3 c1"], "Facebook Apple Microsoft");
        let d2 = gen(&db, &["c2 c5 c6"], "Google IBM Xerox");
        let s1 = d1.size();
        let inter = intersect_du(&d1, &d2);
        assert!(inter.has_programs());
        let si = inter.size();
        assert!(
            si < s1 * s1,
            "quadratic blowup: {si} vs first-example size {s1}"
        );
    }

    #[test]
    fn missing_top_on_either_side_gives_empty() {
        let db = comp_db();
        let d1 = gen(&db, &["c2"], "Google");
        let empty = SemDStruct::default();
        assert!(!intersect_du(&d1, &empty).has_programs());
        assert!(!intersect_du(&empty, &d1).has_programs());
    }

    /// All observables of an intersection result, for differential checks:
    /// emptiness, exact count, size, and the top-3 programs' outputs on a
    /// row of probe inputs.
    fn observe(
        d: &SemDStruct,
        db: &Database,
        probes: &[&str],
    ) -> (bool, String, usize, Vec<Vec<Option<String>>>) {
        let w = LuRankWeights::default();
        let tokens = LuOptions::default().syntactic.token_set;
        let outputs = w
            .top_k(d, 2, 3)
            .iter()
            .map(|r| {
                probes
                    .iter()
                    .map(|p| eval_sem(&r.expr, db, &[p], &tokens))
                    .collect()
            })
            .collect();
        (d.has_programs(), d.count(2).to_decimal(), d.size(), outputs)
    }

    #[test]
    fn parallel_plane_matches_serial_observables() {
        let db = comp_db();
        let cases = [
            (("c2", "Google"), ("c5", "IBM")),
            (("c2", "Google"), ("c2", "Apple")),
            (("c2", "same"), ("c5", "same")),
            (
                ("c4 c3 c1", "Facebook Apple Microsoft"),
                ("c2 c5 c6", "Google IBM Xerox"),
            ),
            (("zzz", "!!??!!"), ("zzz", "!!??!!")),
        ];
        let probes = ["c1", "c2", "c6"];
        for ((i1, o1), (i2, o2)) in cases {
            let d1 = gen(&db, &[i1], o1);
            let d2 = gen(&db, &[i2], o2);
            let serial = intersect_du(&d1, &d2);
            for threads in [2, 4] {
                // Call the parallel plane directly, below any threshold.
                let par = intersect_du_parallel(&d1, &d2, &Pool::new(threads));
                assert_eq!(
                    observe(&par, &db, &probes),
                    observe(&serial, &db, &probes),
                    "parallel/serial drift on ({i1}->{o1}) x ({i2}->{o2}) at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn intersect_du_with_dispatches_by_pool_and_size() {
        // Serial pool or small product: identical structures bit-for-bit
        // (it is the serial path).
        let db = comp_db();
        let d1 = gen(&db, &["c2"], "Google");
        let d2 = gen(&db, &["c5"], "IBM");
        let via_with = intersect_du_with(&d1, &d2, &Pool::new(1));
        let serial = intersect_du(&d1, &d2);
        assert_eq!(
            observe(&via_with, &db, &["c3"]),
            observe(&serial, &db, &["c3"])
        );
        let via_par_pool = intersect_du_with(&d1, &d2, &Pool::new(4));
        assert_eq!(
            observe(&via_par_pool, &db, &["c3"]),
            observe(&serial, &db, &["c3"])
        );
    }

    #[test]
    fn three_example_chain_intersection() {
        let db = comp_db();
        let d1 = gen(&db, &["c2"], "Google");
        let d2 = gen(&db, &["c5"], "IBM");
        let d3 = gen(&db, &["c3"], "Apple");
        let inter = intersect_du(&intersect_du(&d1, &d2), &d3);
        assert!(inter.has_programs());
        let prog = LuRankWeights::default().best(&inter, 2).unwrap();
        let tokens = LuOptions::default().syntactic.token_set;
        assert_eq!(
            eval_sem(&prog.expr, &db, &["c1"], &tokens).as_deref(),
            Some("Microsoft")
        );
    }
}
