//! Differential harness for the service plane.
//!
//! `Engine::learn_batch` fans independent requests across the engine's
//! worker pool over one shared warm `DagCache`; `Session` drives the §3.2
//! incremental protocol through the same plane. Neither may change a
//! single observable: this harness replays the full 50-task benchmark
//! suite through the batch path at pool widths 1, 2 and the machine width
//! and asserts exact program counts, structure sizes and top-k ranked
//! outputs **bit-identical** to sequential `Synthesizer::learn` calls,
//! then drives multi-session conversations and checks they converge
//! exactly like the core `converge` loop.

use std::sync::Arc;

use semantic_strings::benchmarks::all_tasks;
use semantic_strings::core::{converge, default_threads, SynthesisOptions};
use semantic_strings::prelude::*;

const MAX_EXAMPLES: usize = 3;
const TOP_K: usize = 3;

/// Observed outputs: one row of `run` results per top-k program.
type TopKOutputs = Vec<Vec<Option<String>>>;

/// All observables of one learned program set: exact count, size, and the
/// top-k ranked outputs over every spreadsheet row.
fn observe(
    learned: &semantic_strings::core::LearnedPrograms,
    rows: &[semantic_strings::core::Example],
) -> (String, usize, TopKOutputs) {
    let outputs = learned
        .top_k(TOP_K)
        .iter()
        .map(|p| {
            rows.iter()
                .map(|r| {
                    let refs: Vec<&str> = r.inputs.iter().map(String::as_str).collect();
                    p.run(&refs)
                })
                .collect()
        })
        .collect();
    (learned.count().to_decimal(), learned.size(), outputs)
}

/// The whole suite through `Engine::learn_batch`, at every pool width:
/// each task contributes one request per example prefix of its converged
/// example sequence (so batches mix one- and multi-example requests), and
/// every response must match the sequential learn of the same prefix bit
/// for bit.
#[test]
fn learn_batch_matches_sequential_learning_on_every_task() {
    let wide = default_threads().max(2);
    let mut widths = vec![1usize, 2];
    if wide > 2 {
        widths.push(wide);
    }

    // Sequential baseline (and the example sequences): plain Synthesizer.
    struct Baseline {
        task: semantic_strings::benchmarks::BenchmarkTask,
        examples: Vec<Example>,
        expected: Vec<(String, usize, TopKOutputs)>,
    }
    let baselines: Vec<Baseline> = all_tasks()
        .into_iter()
        .map(|task| {
            let synthesizer = Synthesizer::new(Arc::new(task.db.clone()));
            let report = converge(&synthesizer, &task.rows, MAX_EXAMPLES)
                .unwrap_or_else(|e| panic!("task {} ({}): {e}", task.id, task.name));
            let expected = (1..=report.examples.len())
                .map(|n| {
                    let learned = synthesizer
                        .learn(&report.examples[..n])
                        .unwrap_or_else(|e| {
                            panic!("task {} ({}) prefix {n}: {e}", task.id, task.name)
                        });
                    observe(&learned, &task.rows)
                })
                .collect();
            Baseline {
                task,
                examples: report.examples,
                expected,
            }
        })
        .collect();

    for &threads in &widths {
        for baseline in &baselines {
            let engine = Engine::with_options(
                Arc::new(baseline.task.db.clone()),
                SynthesisOptions::builder().threads(threads).build(),
            );
            let requests: Vec<LearnRequest> = (1..=baseline.examples.len())
                .map(|n| LearnRequest::new(baseline.examples[..n].to_vec()))
                .collect();
            let responses = engine.learn_batch(&requests);
            assert_eq!(responses.len(), requests.len());
            for (i, (response, expected)) in responses.iter().zip(&baseline.expected).enumerate() {
                assert_eq!(response.request, i, "responses must keep request order");
                let learned = response.programs().unwrap_or_else(|| {
                    panic!(
                        "task {} ({}) width {threads} request {i} failed: {:?}",
                        baseline.task.id, baseline.task.name, response.result
                    )
                });
                assert_eq!(
                    &observe(learned, &baseline.task.rows),
                    expected,
                    "task {} ({}) width {threads} request {i} drifted from sequential learn",
                    baseline.task.id,
                    baseline.task.name
                );
            }

            // Replaying the same batch is memo-served and still identical.
            let replay = engine.learn_batch(&requests);
            for (i, (response, expected)) in replay.iter().zip(&baseline.expected).enumerate() {
                assert_eq!(
                    &observe(
                        response.programs().expect("replay learns"),
                        &baseline.task.rows
                    ),
                    expected,
                    "task {} ({}) width {threads} warm replay request {i} drifted",
                    baseline.task.id,
                    baseline.task.name
                );
            }
        }
    }
}

/// The §3.2 protocol through sessions: every suite task converges through
/// `Session::converge_with` exactly like the core `converge` loop — same
/// number of examples, same convergence verdict, same final observables —
/// with *two* sessions per engine running the conversation independently
/// over one shared plane.
#[test]
fn multi_session_convergence_matches_the_core_loop() {
    for task in all_tasks() {
        let synthesizer = Synthesizer::new(Arc::new(task.db.clone()));
        let report = converge(&synthesizer, &task.rows, MAX_EXAMPLES)
            .unwrap_or_else(|e| panic!("task {} ({}): {e}", task.id, task.name));
        let expected = observe(
            report
                .learned
                .as_ref()
                .expect("converge returns a learned set"),
            &task.rows,
        );

        let engine = Engine::new(Arc::new(task.db.clone()));
        let mut first = engine.session();
        let mut second = engine.session();
        for (name, session) in [("first", &mut first), ("second", &mut second)] {
            let outcome = session
                .converge_with(&task.rows, MAX_EXAMPLES)
                .unwrap_or_else(|e| panic!("task {} ({}) {name}: {e}", task.id, task.name));
            assert_eq!(
                outcome.examples_used, report.examples_used,
                "task {} ({}) {name} session used a different number of examples",
                task.id, task.name
            );
            assert_eq!(outcome.converged, report.converged);
            assert_eq!(
                observe(session.learned().expect("converged"), &task.rows),
                expected,
                "task {} ({}) {name} session drifted from the core loop",
                task.id,
                task.name
            );
        }
        // The second conversation replayed the first one's learns from the
        // shared plane.
        let stats = engine.cache_stats();
        assert!(
            stats.example_hits > 0,
            "task {} ({}): second session should hit the shared memo plane: {stats:?}",
            task.id,
            task.name
        );
    }
}
