//! Evaluation of `Lt` expressions (§4.1 semantics).
//!
//! `Select(C, T, b)` evaluates `b`'s nested expressions first, then returns
//! `T[C, r]` for the unique row `r` satisfying `b`; if no (single) row
//! satisfies the condition the expression returns the empty string, exactly
//! as specified in the paper.

use sst_tables::Database;

use crate::language::{LookupExpr, PredRhs};

/// Evaluates an `Lt` expression on an input row.
///
/// Returns `None` only when the expression references a missing variable —
/// a failed lookup yields `Some("")` per the paper's semantics.
pub fn eval_lookup(expr: &LookupExpr, db: &Database, inputs: &[&str]) -> Option<String> {
    match expr {
        LookupExpr::Var(v) => inputs.get(*v as usize).map(|s| (*s).to_string()),
        LookupExpr::Select { col, table, cond } => {
            let t = db.table(*table);
            let mut resolved: Vec<(u32, String)> = Vec::with_capacity(cond.len());
            for p in cond {
                let value = match &p.rhs {
                    PredRhs::Const(s) => s.clone(),
                    PredRhs::Expr(e) => eval_lookup(e, db, inputs)?,
                };
                resolved.push((p.col, value));
            }
            let conds: Vec<(u32, &str)> = resolved.iter().map(|(c, v)| (*c, v.as_str())).collect();
            Some(match t.find_unique_row(&conds) {
                Some(row) => t.cell(*col, row).to_string(),
                None => String::new(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::Predicate;
    use sst_tables::Table;

    fn db() -> Database {
        Database::from_tables(vec![
            Table::new(
                "CustData",
                vec!["Name", "Addr", "St"],
                vec![
                    vec!["Sean Riley", "432", "15th"],
                    vec!["Peter Shaw", "24", "18th"],
                    vec!["Mike Henry", "432", "18th"],
                    vec!["Gary Lamb", "104", "12th"],
                ],
            )
            .unwrap(),
            Table::new(
                "Sale",
                vec!["Addr", "St", "Date", "Price"],
                vec![
                    vec!["24", "18th", "5/21", "110"],
                    vec!["104", "12th", "5/23", "225"],
                    vec!["432", "18th", "5/20", "2015"],
                    vec!["432", "15th", "5/24", "495"],
                ],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    /// The paper's Example 2 expression:
    /// `Select(Price, Sale, Addr = Select(Addr, CustData, Name = v1)
    ///                    ∧ St = Select(St, CustData, Name = v1))`.
    fn example2_expr(db: &Database) -> LookupExpr {
        let cust = db.table_id("CustData").unwrap();
        let sale = db.table_id("Sale").unwrap();
        let sub = |col: u32| {
            Box::new(LookupExpr::Select {
                col,
                table: cust,
                cond: vec![Predicate {
                    col: 0,
                    rhs: PredRhs::Expr(Box::new(LookupExpr::Var(0))),
                }],
            })
        };
        LookupExpr::Select {
            col: 3,
            table: sale,
            cond: vec![
                Predicate {
                    col: 0,
                    rhs: PredRhs::Expr(sub(1)),
                },
                Predicate {
                    col: 1,
                    rhs: PredRhs::Expr(sub(2)),
                },
            ],
        }
    }

    #[test]
    fn example2_join_evaluates() {
        let db = db();
        let e = example2_expr(&db);
        assert_eq!(
            eval_lookup(&e, &db, &["Peter Shaw"]).as_deref(),
            Some("110")
        );
        assert_eq!(eval_lookup(&e, &db, &["Gary Lamb"]).as_deref(), Some("225"));
        assert_eq!(
            eval_lookup(&e, &db, &["Mike Henry"]).as_deref(),
            Some("2015")
        );
        assert_eq!(
            eval_lookup(&e, &db, &["Sean Riley"]).as_deref(),
            Some("495")
        );
    }

    #[test]
    fn missing_row_yields_empty_string() {
        let db = db();
        let e = example2_expr(&db);
        assert_eq!(eval_lookup(&e, &db, &["Nobody"]).as_deref(), Some(""));
    }

    #[test]
    fn missing_variable_is_none() {
        let db = db();
        assert_eq!(eval_lookup(&LookupExpr::Var(3), &db, &["x"]), None);
    }

    #[test]
    fn const_predicate_lookup() {
        let db = db();
        let e = LookupExpr::Select {
            col: 0,
            table: 0,
            cond: vec![Predicate {
                col: 1,
                rhs: PredRhs::Const("104".into()),
            }],
        };
        // Addr alone is not a key, but 104 is unique in the data.
        assert_eq!(eval_lookup(&e, &db, &[]).as_deref(), Some("Gary Lamb"));
    }

    #[test]
    fn ambiguous_condition_yields_empty() {
        let db = db();
        let e = LookupExpr::Select {
            col: 0,
            table: 0,
            cond: vec![Predicate {
                col: 1,
                rhs: PredRhs::Const("432".into()),
            }],
        };
        // Two rows share Addr=432: defensive empty result.
        assert_eq!(eval_lookup(&e, &db, &[]).as_deref(), Some(""));
    }
}
