//! The syntactic string-transformation language `Ls` and its inductive
//! synthesis algorithm (`GenerateStr_s` / `Intersect_s`).
//!
//! This crate reproduces the subset of Gulwani's POPL 2011 language that
//! Singh & Gulwani's VLDB 2012 paper builds on (§5 "Background"): programs
//! are concatenations of constants, input variables and substrings delimited
//! by token-based position expressions. Sets of programs are represented by
//! a [`Dag`] whose edges carry atomic-expression sets; generation and
//! intersection run in polynomial time and the ranked top program is
//! extracted by a shortest-path DP.
//!
//! The atom *source* type is generic: the semantic layer (`sst-core`) reuses
//! every algorithm here with lookup-node sources to get the `Lu` language.
//!
//! # Example
//!
//! ```
//! use sst_syntactic::SyntacticLearner;
//!
//! let learner = SyntacticLearner::default();
//! let learned = learner
//!     .learn(&[
//!         (vec!["Alan Turing".to_string()], "Turing A".to_string()),
//!         (vec!["Grace Hopper".to_string()], "Hopper G".to_string()),
//!     ])
//!     .expect("consistent programs exist");
//! let top = learned.top().expect("ranked program");
//! assert_eq!(
//!     learned.run(&top, &["Barbara Liskov"]).as_deref(),
//!     Some("Liskov B")
//! );
//! ```

mod compiled;
mod dag;
mod eval;
mod generate;
mod intersect;
mod language;
mod matches;
mod positions;
mod rank;
mod tokens;

pub use compiled::{eval_compiled_pos, CompiledPos, RunsBuf, TokenPlan};
pub use dag::{AtomSet, Dag, PosSet};
pub use eval::{eval_atom, eval_expr, eval_on_state, eval_pos, eval_pos_with_runs};
pub use generate::{generate_dag, generate_dag_prepared, GenOptions, PreparedSources};
pub use intersect::{
    assemble_product_dag, intersect_atom_sets, intersect_atom_sets_memo, intersect_dags,
    intersect_dags_memo, intersect_dags_memo_unpruned, intersect_dags_prepared,
    intersect_pos_lists, intersect_pos_sets, product_edge_atoms, product_path_masks, PosIntersect,
    PosMemo, ProductMasks, SyncPosMemo,
};
pub use language::{AtomicExpr, PosExpr, RegexSeq, StringExpr, Var, VarId};
pub use matches::Matcher;
pub use positions::PositionLearner;
pub use rank::RankWeights;
pub use tokens::{StringRuns, Token, TokenSet};

use sst_counting::BigUint;

/// Stand-alone synthesizer for the pure syntactic language `Ls`.
///
/// (The full semantic synthesizer lives in `sst-core`; this front-end is the
/// `Lt`-free baseline and the workhorse of the `Ls`-only tests/benches.)
#[derive(Debug, Clone, Default)]
pub struct SyntacticLearner {
    /// Generation options (token set, context length bound).
    pub options: GenOptions,
    /// Ranking weights.
    pub weights: RankWeights,
}

/// The set of `Ls` programs consistent with all provided examples.
#[derive(Debug, Clone)]
pub struct LearnedSyntactic {
    dag: Dag<Var>,
    options: GenOptions,
    weights: RankWeights,
}

impl SyntacticLearner {
    /// Learns from `(inputs, output)` examples; `None` if no program in
    /// `Ls` is consistent with all of them.
    pub fn learn(&self, examples: &[(Vec<String>, String)]) -> Option<LearnedSyntactic> {
        let mut iter = examples.iter();
        let (first_in, first_out) = iter.next()?;
        let mut dag = self.generate(first_in, first_out);
        for (inputs, output) in iter {
            let next = self.generate(inputs, output);
            dag = intersect_dags(&dag, &next, &mut |a: &Var, b: &Var| (a == b).then_some(*a))?;
        }
        Some(LearnedSyntactic {
            dag,
            options: self.options.clone(),
            weights: self.weights.clone(),
        })
    }

    fn generate(&self, inputs: &[String], output: &str) -> Dag<Var> {
        let sources: Vec<(Var, &str)> = inputs
            .iter()
            .enumerate()
            .map(|(i, s)| (Var(i as u32), s.as_str()))
            .collect();
        generate_dag(&sources, output, &self.options)
    }
}

impl LearnedSyntactic {
    /// The underlying program-set DAG.
    pub fn dag(&self) -> &Dag<Var> {
        &self.dag
    }

    /// Number of programs represented.
    pub fn count(&self) -> BigUint {
        self.dag.count_programs(&mut |_| BigUint::one())
    }

    /// Data-structure size in terminal symbols.
    pub fn size(&self) -> usize {
        self.dag.size(&mut |_| 1)
    }

    /// The top-ranked program.
    pub fn top(&self) -> Option<StringExpr<Var>> {
        self.weights
            .best_program(&self.dag, &mut |_| Some(0))
            .map(|(_, p)| p)
    }

    /// Runs a program on a fresh input row.
    pub fn run(&self, program: &StringExpr<Var>, inputs: &[&str]) -> Option<String> {
        eval_on_state(program, inputs, &self.options.token_set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(inputs: &[&str], output: &str) -> (Vec<String>, String) {
        (
            inputs.iter().map(|s| s.to_string()).collect(),
            output.to_string(),
        )
    }

    #[test]
    fn learn_name_initial_format_generalizes() {
        let learner = SyntacticLearner::default();
        let learned = learner.learn(&[ex(&["Alan Turing"], "Turing A")]).unwrap();
        let top = learned.top().unwrap();
        assert_eq!(
            learned.run(&top, &["Grace Hopper"]).as_deref(),
            Some("Hopper G")
        );
    }

    #[test]
    fn learn_from_two_examples_drops_constants() {
        let learner = SyntacticLearner::default();
        let learned = learner
            .learn(&[ex(&["ab 12 cd"], "12"), ex(&["qq 7 rr"], "7")])
            .unwrap();
        let top = learned.top().unwrap();
        assert_eq!(learned.run(&top, &["zz 999 kk"]).as_deref(), Some("999"));
    }

    #[test]
    fn learn_inconsistent_returns_none() {
        let learner = SyntacticLearner::default();
        assert!(learner.learn(&[ex(&["a"], "X"), ex(&["a"], "Y")]).is_none());
    }

    #[test]
    fn learn_empty_examples_is_none() {
        let learner = SyntacticLearner::default();
        assert!(learner.learn(&[]).is_none());
    }

    #[test]
    fn count_and_size_reported() {
        let learner = SyntacticLearner::default();
        let learned = learner.learn(&[ex(&["abcd"], "abcd")]).unwrap();
        assert!(learned.count() > BigUint::from(1u64));
        assert!(learned.size() > 0);
    }

    #[test]
    fn multi_variable_concatenation() {
        let learner = SyntacticLearner::default();
        let learned = learner
            .learn(&[
                ex(&["Honda", "125"], "Honda-125"),
                ex(&["Ducati", "250"], "Ducati-250"),
            ])
            .unwrap();
        let top = learned.top().unwrap();
        assert_eq!(
            learned.run(&top, &["Yamaha", "600"]).as_deref(),
            Some("Yamaha-600")
        );
    }
}
