//! Inverted value→cell index over interned symbols.
//!
//! `GenerateStr_t` (Fig. 5a, line 9) iterates over "each table T, col C,
//! row r s.t. `T[C,r] = val(η)`" for every frontier node η. Scanning all
//! tables per frontier string would be quadratic; this index answers the
//! query in O(1) per distinct value. Keys are [`Symbol`]s, so a cross-table
//! probe hashes one `u32` once — no per-table string hashing, no `String`
//! allocation.

use crate::intern::{Symbol, SymbolMap};
use crate::table::{CellRef, ColId, RowId, Table};

/// Inverted index from interned cell value to every cell holding it.
#[derive(Debug, Clone, Default)]
pub struct ValueIndex {
    cells: SymbolMap<Vec<CellRef>>,
}

impl ValueIndex {
    /// Builds the index for one table.
    pub fn build(table: &Table) -> Self {
        let mut cells: SymbolMap<Vec<CellRef>> = SymbolMap::default();
        cells.reserve(table.len() * table.width());
        for r in 0..table.len() {
            for c in 0..table.width() {
                let v = table.cell_sym(c as ColId, r as RowId);
                cells.entry(v).or_default().push(CellRef {
                    col: c as ColId,
                    row: r as RowId,
                });
            }
        }
        ValueIndex { cells }
    }

    /// All cells whose content equals `value`.
    pub fn cells_equal(&self, value: Symbol) -> &[CellRef] {
        self.cells.get(&value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Distinct values stored in the table.
    pub fn distinct_values(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.cells.keys().map(|s| s.as_str())
    }

    /// Number of distinct values.
    pub fn distinct_len(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(
            "T",
            vec!["A", "B"],
            vec![vec!["x", "y"], vec!["y", "z"], vec!["x", "x"]],
        )
        .unwrap()
    }

    #[test]
    fn equal_lookup_finds_all_cells() {
        let idx = ValueIndex::build(&t());
        let mut hits = idx.cells_equal(Symbol::intern("x")).to_vec();
        hits.sort();
        assert_eq!(
            hits,
            vec![
                CellRef { col: 0, row: 0 },
                CellRef { col: 0, row: 2 },
                CellRef { col: 1, row: 2 },
            ]
        );
        assert_eq!(idx.cells_equal(Symbol::intern("nope")), &[]);
    }

    #[test]
    fn distinct_values_counted() {
        let idx = ValueIndex::build(&t());
        assert_eq!(idx.distinct_len(), 3);
        let mut vals: Vec<&str> = idx.distinct_values().collect();
        vals.sort();
        assert_eq!(vals, vec!["x", "y", "z"]);
    }

    #[test]
    fn empty_table_empty_index() {
        let t = Table::new_with_key_width("T", vec!["A"], Vec::<Vec<&str>>::new(), 1).unwrap();
        let idx = ValueIndex::build(&t);
        assert_eq!(idx.distinct_len(), 0);
    }
}
