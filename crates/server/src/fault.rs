//! Deterministic fault injection for the serving stack (the chaos plane).
//!
//! Compiled only under the `fault-injection` cargo feature; a production
//! build carries none of this code. A [`FaultPlan`] is attached to a
//! server through `ServerConfig::fault_plan`; the connection loop then
//! draws from it at three named sites — before reading a request, around
//! the handler, and before writing the response — and a draw may come
//! back as a delay, a dropped connection, a mid-frame truncation, or an
//! injected handler panic.
//!
//! Draws are seeded (splitmix64 over a global draw counter), so a chaos
//! run with a fixed seed injects the same fault *mix* every time, and
//! per-action counters let the harness assert exactly how much chaos it
//! actually exercised. `set_enabled(false)` turns the plan off atomically
//! mid-run — the `chaos_replay` harness uses that for its final
//! fault-free wave over the same live server.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Where in the request lifecycle a fault is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Before reading the next request off the connection.
    PreRead,
    /// Around the request handler (inside the `catch_unwind` boundary).
    Handler,
    /// After the handler, before writing the response.
    PreWrite,
}

/// What an unlucky draw does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep this long at the site (stalls the connection thread; with a
    /// request deadline in force this forces 408s).
    DelayMs(u64),
    /// Close the connection without reading or writing anything further.
    DropConnection,
    /// Write only the first half of the response bytes, then close —
    /// the client sees a frame cut mid-body.
    TruncateResponse,
    /// Panic inside the handler (isolated by `catch_unwind`, surfaced to
    /// the client as a typed 500).
    Panic,
}

/// Per-action injection counts, snapshotted by [`FaultPlan::injected`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Injected delays.
    pub delays: u64,
    /// Dropped connections.
    pub drops: u64,
    /// Truncated responses.
    pub truncates: u64,
    /// Injected handler panics.
    pub panics: u64,
}

impl FaultCounts {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.delays + self.drops + self.truncates + self.panics
    }
}

/// The seeded fault schedule. One per server; thread-safe (all state is
/// atomics) and deterministic in its *sequence* of draw outcomes for a
/// given seed — concurrent connections interleave draws
/// nondeterministically, but the harness asserts on counts and typed
/// outcomes, not on which request got which fault.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Fault probability per site visit, parts per million.
    rate_ppm: u32,
    /// Duration of an injected delay.
    delay_ms: u64,
    enabled: AtomicBool,
    draws: AtomicU64,
    delays: AtomicU64,
    drops: AtomicU64,
    truncates: AtomicU64,
    panics: AtomicU64,
}

/// splitmix64: the standard 64-bit finalizer — a cheap, well-mixed
/// stateless PRNG (the same device the client uses for retry jitter).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// A plan injecting a fault on `rate_ppm` parts-per-million of site
    /// visits, with delays of `delay_ms`.
    pub fn new(seed: u64, rate_ppm: u32, delay_ms: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rate_ppm: rate_ppm.min(1_000_000),
            delay_ms,
            enabled: AtomicBool::new(true),
            draws: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            truncates: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        }
    }

    /// Turns injection on or off atomically (off: every draw is a no-op,
    /// counters freeze).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// Whether the plan is currently injecting.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// One draw at `site`: `None` almost always, a fault on the seeded
    /// `rate_ppm` fraction of visits. Only actions meaningful at the site
    /// are drawn (e.g. a panic only inside the handler boundary).
    pub fn draw(&self, site: FaultSite) -> Option<FaultAction> {
        if !self.is_enabled() {
            return None;
        }
        let n = self.draws.fetch_add(1, Ordering::Relaxed);
        let r = splitmix64(self.seed ^ ((site as u64) << 56) ^ n);
        if (r % 1_000_000) as u32 >= self.rate_ppm {
            return None;
        }
        let pick = splitmix64(r);
        let action = match site {
            FaultSite::PreRead => {
                if pick.is_multiple_of(2) {
                    FaultAction::DelayMs(self.delay_ms)
                } else {
                    FaultAction::DropConnection
                }
            }
            FaultSite::Handler => {
                if pick.is_multiple_of(2) {
                    FaultAction::DelayMs(self.delay_ms)
                } else {
                    FaultAction::Panic
                }
            }
            FaultSite::PreWrite => match pick % 3 {
                0 => FaultAction::DelayMs(self.delay_ms),
                1 => FaultAction::DropConnection,
                _ => FaultAction::TruncateResponse,
            },
        };
        let counter = match action {
            FaultAction::DelayMs(_) => &self.delays,
            FaultAction::DropConnection => &self.drops,
            FaultAction::TruncateResponse => &self.truncates,
            FaultAction::Panic => &self.panics,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Some(action)
    }

    /// Snapshot of how many faults of each kind have been injected.
    pub fn injected(&self) -> FaultCounts {
        FaultCounts {
            delays: self.delays.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            truncates: self.truncates.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires_and_counts_freeze() {
        let plan = FaultPlan::new(7, 1_000_000, 1);
        assert!(plan.draw(FaultSite::Handler).is_some());
        plan.set_enabled(false);
        for _ in 0..100 {
            assert!(plan.draw(FaultSite::PreRead).is_none());
        }
        assert_eq!(plan.injected().total(), 1);
    }

    #[test]
    fn rate_is_roughly_respected_and_deterministic() {
        let a = FaultPlan::new(42, 100_000, 1); // 10%
        let b = FaultPlan::new(42, 100_000, 1);
        let hits_a: Vec<Option<FaultAction>> =
            (0..2000).map(|_| a.draw(FaultSite::PreWrite)).collect();
        let hits_b: Vec<Option<FaultAction>> =
            (0..2000).map(|_| b.draw(FaultSite::PreWrite)).collect();
        assert_eq!(hits_a, hits_b, "same seed, same schedule");
        let fired = hits_a.iter().flatten().count();
        assert!((100..300).contains(&fired), "10% of 2000 ≈ {fired}");
        assert_eq!(a.injected().total(), fired as u64);
        // A handler-site draw never yields truncation, a pre-write draw
        // never yields a panic.
        let c = FaultPlan::new(1, 1_000_000, 1);
        for _ in 0..50 {
            let action = c.draw(FaultSite::Handler).unwrap();
            assert!(!matches!(
                action,
                FaultAction::TruncateResponse | FaultAction::DropConnection
            ));
            let action = c.draw(FaultSite::PreWrite).unwrap();
            assert!(!matches!(action, FaultAction::Panic));
        }
    }
}
