//! Benchmark task model.
//!
//! Each task reconstructs one help-forum problem from the paper's 50-task
//! corpus (§7): a small database of helper tables plus the full spreadsheet
//! (input rows with ground-truth outputs). The synthesizer sees rows as
//! examples only when the interaction loop asks for them; the rest are
//! held out for checking generalization.

use sst_core::Example;
use sst_tables::Database;

/// Which language fragment the task needs (the paper's 12/38 split).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Expressible in the pure lookup language `Lt` (§4).
    Lookup,
    /// Requires the full semantic language `Lu` (§5) — syntactic
    /// manipulation before/after lookups, or concatenation.
    Semantic,
}

/// One reconstructed help-forum benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkTask {
    /// Stable id (1-based, 1..=50).
    pub id: usize,
    /// Short snake-case name.
    pub name: &'static str,
    /// Language fragment needed.
    pub category: Category,
    /// What the end-user asked for.
    pub description: &'static str,
    /// Helper tables (user tables and/or §6 background tables).
    pub db: Database,
    /// The full spreadsheet: every row with its ground-truth output.
    pub rows: Vec<Example>,
}

impl BenchmarkTask {
    /// The first `n` rows as training examples.
    pub fn examples(&self, n: usize) -> &[Example] {
        &self.rows[..n.min(self.rows.len())]
    }

    /// Rows after the first `n` (held out).
    pub fn held_out(&self, n: usize) -> &[Example] {
        &self.rows[n.min(self.rows.len())..]
    }

    /// Input rows only (for the interaction model).
    pub fn input_rows(&self) -> Vec<Vec<String>> {
        self.rows.iter().map(|r| r.inputs.clone()).collect()
    }
}

/// Convenience example constructor used throughout the suite.
pub fn ex(inputs: &[&str], output: &str) -> Example {
    Example::new(inputs.to_vec(), output)
}
