//! Global string interner: the workspace's interned value plane.
//!
//! Every cell value, example string and reachability-frontier value is
//! interned once into a process-global table and represented thereafter by a
//! [`Symbol`] — a `u32` id. The synthesis hot path (`GenerateStr_t`'s
//! frontier probes, `ValueIndex` lookups, node-map keys, predicate
//! constants) then works entirely on symbols: equality is an integer
//! compare, hashing is one multiply, and no per-probe `String` is ever
//! allocated. Interned strings live for the process lifetime — the set is
//! bounded by the database contents plus the example strings, which is
//! exactly the working set the synthesizer touches anyway.
//!
//! `Symbol(0)` is always the empty string, so emptiness tests need no
//! resolution.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{OnceLock, RwLock};

/// An interned string: a dense `u32` id into the process-global interner.
///
/// Equal symbols ⇔ equal strings. Ordering follows interning order (first
/// intern wins the smaller id), which is stable within a process but *not*
/// lexicographic — sort resolved strings when presentation order matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        let mut map = HashMap::with_capacity(1024);
        map.insert("", 0);
        RwLock::new(Interner {
            map,
            strings: vec![""],
        })
    })
}

impl Symbol {
    /// The interned empty string.
    pub const EMPTY: Symbol = Symbol(0);

    /// Interns `s`, returning its symbol (idempotent).
    pub fn intern(s: &str) -> Symbol {
        {
            let guard = interner().read().expect("interner poisoned");
            if let Some(&id) = guard.map.get(s) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write().expect("interner poisoned");
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id); // raced: someone interned between locks
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        let id = guard.strings.len() as u32;
        guard.strings.push(leaked);
        guard.map.insert(leaked, id);
        Symbol(id)
    }

    /// Looks `s` up without interning; `None` when never interned. Use for
    /// probe values that should not grow the intern table.
    pub fn get(s: &str) -> Option<Symbol> {
        interner()
            .read()
            .expect("interner poisoned")
            .map
            .get(s)
            .map(|&id| Symbol(id))
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().expect("interner poisoned").strings[self.0 as usize]
    }

    /// The raw id.
    pub fn id(self) -> u32 {
        self.0
    }

    /// True iff this is the empty string (no resolution needed).
    pub fn is_empty(self) -> bool {
        self == Symbol::EMPTY
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

/// Multiply-xor hasher for small integer keys ([`Symbol`], node-id pairs).
/// One multiply per word beats SipHash on the synthesis hot path; symbols
/// are attacker-free internal ids, so DoS hardening is not needed.
#[derive(Debug, Default, Clone, Copy)]
pub struct IntHasher(u64);

const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for IntHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer fields; rarely used on the hot path.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(SEED).rotate_left(23);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    fn write_u64(&mut self, v: u64) {
        let x = (self.0.rotate_left(29) ^ v).wrapping_mul(SEED);
        self.0 = x ^ (x >> 32);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `HashMap` keyed by integer-like keys via [`IntHasher`].
pub type IntMap<K, V> = HashMap<K, V, BuildHasherDefault<IntHasher>>;

/// `HashMap` from [`Symbol`]s, the common case.
pub type SymbolMap<V> = IntMap<Symbol, V>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_equal_by_content() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        let c = Symbol::intern("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "hello");
        assert_eq!(c.as_str(), "world");
    }

    #[test]
    fn empty_symbol_is_reserved() {
        assert_eq!(Symbol::intern(""), Symbol::EMPTY);
        assert!(Symbol::EMPTY.is_empty());
        assert!(!Symbol::intern("x").is_empty());
        assert_eq!(Symbol::EMPTY.as_str(), "");
    }

    #[test]
    fn get_does_not_intern() {
        assert_eq!(Symbol::get("never-interned-probe-q7x"), None);
        let s = Symbol::intern("interned-once-q7x");
        assert_eq!(Symbol::get("interned-once-q7x"), Some(s));
    }

    #[test]
    fn display_and_conversions() {
        let s: Symbol = "conv".into();
        assert_eq!(s.to_string(), "conv");
        let t: Symbol = String::from("conv").into();
        assert_eq!(s, t);
    }

    #[test]
    fn symbol_map_round_trips() {
        let mut m: SymbolMap<u32> = SymbolMap::default();
        for i in 0..100u32 {
            m.insert(Symbol::intern(&format!("k{i}")), i);
        }
        for i in 0..100u32 {
            assert_eq!(m.get(&Symbol::intern(&format!("k{i}"))), Some(&i));
        }
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..200)
                        .map(|i| Symbol::intern(&format!("t{i}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
