//! In-memory relational table substrate.
//!
//! The VLDB 2012 synthesis algorithms treat the spreadsheet's helper tables
//! as a small relational database: every cell is a string, every table has
//! one or more *candidate keys* (ordered column sets whose values identify a
//! row uniquely), and the synthesizer repeatedly asks two queries:
//!
//! 1. *exact reachability* — "which cells equal this string?" (drives
//!    `GenerateStr_t`, Fig. 5a of the paper), answered by an inverted
//!    [`ValueIndex`], and
//! 2. *relaxed reachability* — "which cells are in a substring relation with
//!    this string?" (drives `GenerateStr'_t`, §5.3), answered by the q-gram
//!    postings of [`SubstringIndex`] via [`Database::cells_related_to`]
//!    (the [`Table::cells_related_to`] full scan remains as the index's
//!    correctness oracle).
//!
//! The paper assumes Excel provides this substrate; here it is built from
//! scratch, including minimal-candidate-key inference and a small CSV reader
//! used by the examples.
//!
//! # Mutating tables at scale
//!
//! Tables are stored **columnar** (one contiguous `Vec<Symbol>` per
//! column) and are mutable in place: [`Database::insert_rows`],
//! [`Database::update_cell`] and [`Database::delete_rows`] maintain the
//! [`ValueIndex`], the [`SubstringIndex`] postings and the per-column
//! probe maps *incrementally*, so a single-row write into a 10⁵–10⁶-row
//! background table costs microseconds instead of an index rebuild.
//! Deletes tombstone rows (ids stay stable) until garbage dominates, then
//! compact. Every mutation draws a globally fresh [`Database::epoch`] and
//! stamps the per-table [`Database::table_epochs`] entry;
//! [`Database::delta_since`] summarizes a span of mutations as a
//! [`DbDelta`] (which tables, which cell values, structural or not) so
//! upstream caches can keep entries that provably didn't change instead of
//! invalidating wholesale.

mod csv;
mod database;
mod error;
mod intern;
mod keys;
mod progset;
mod substring_index;
mod table;
mod value_index;

pub use csv::{parse_csv, write_csv, CsvError};
pub use database::{Database, DbDelta, TableId};
pub use error::TableError;
pub use intern::{IntHasher, IntMap, Symbol, SymbolMap};
pub use progset::ProgSet;
pub use substring_index::SubstringIndex;
pub use table::{CellRef, ColId, RowId, Table};
pub use value_index::ValueIndex;
