//! Tokens and token-run computation.
//!
//! The syntactic language `Ls` (§5 "Background" of the paper, after
//! Gulwani POPL 2011) builds regular expressions from a finite, extensible
//! set of tokens. A token denotes a *maximal run* of characters from a
//! character class (e.g. `NumTok` = a maximal run of digits), or an anchor
//! (`StartTok`/`EndTok`, matching the empty string at the ends).
//!
//! Maximal-run semantics makes matching deterministic: for a given token
//! there is at most one run ending (or starting) at any position, so
//! token-sequence matching and position evaluation are linear-time. The same
//! semantics is used for *evaluation* and for *learning*, which is what
//! makes `GenerateStr_s` sound.
//!
//! Following this paper (not POPL'11), `AlphTok` matches *alphanumeric*
//! runs — Example 6 relies on `SubStr2(v1, AlphTok, 1)` extracting `"c4"`.
//! Positions and runs are in **characters**, not bytes.

use std::fmt;

/// A token of the syntactic language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Token {
    /// `UpperTok`: maximal run of uppercase letters.
    Upper,
    /// `LowerTok`: maximal run of lowercase letters.
    Lower,
    /// Maximal run of ASCII letters.
    Alpha,
    /// `NumTok`: maximal run of decimal digits.
    Num,
    /// `AlphTok` (this paper's reading): maximal run of alphanumerics.
    AlphNum,
    /// `DecNumTok`: maximal run of digits and/or decimal points.
    DecNum,
    /// Maximal run of whitespace.
    Whitespace,
    /// Maximal run of non-whitespace, non-alphanumeric characters.
    Punct,
    /// `StartTok`: the empty string at position 0.
    Start,
    /// `EndTok`: the empty string at the last position.
    End,
    /// A maximal run of one specific character (e.g. `SlashTok`).
    Special(char),
}

impl Token {
    /// Whether `c` belongs to this token's character class. Anchors have an
    /// empty class.
    pub fn matches_char(self, c: char) -> bool {
        match self {
            Token::Upper => c.is_ascii_uppercase(),
            Token::Lower => c.is_ascii_lowercase(),
            Token::Alpha => c.is_ascii_alphabetic(),
            Token::Num => c.is_ascii_digit(),
            Token::AlphNum => c.is_ascii_alphanumeric(),
            Token::DecNum => c.is_ascii_digit() || c == '.',
            Token::Whitespace => c.is_whitespace(),
            Token::Punct => !c.is_whitespace() && !c.is_ascii_alphanumeric(),
            Token::Start | Token::End => false,
            Token::Special(s) => c == s,
        }
    }

    /// True for the zero-width anchors.
    pub fn is_anchor(self) -> bool {
        matches!(self, Token::Start | Token::End)
    }

    /// Canonical surface name, matching the paper's notation.
    pub fn name(self) -> String {
        match self {
            Token::Upper => "UpperTok".into(),
            Token::Lower => "LowerTok".into(),
            Token::Alpha => "AlphaTok".into(),
            Token::Num => "NumTok".into(),
            Token::AlphNum => "AlphTok".into(),
            Token::DecNum => "DecNumTok".into(),
            Token::Whitespace => "WsTok".into(),
            Token::Punct => "PunctTok".into(),
            Token::Start => "StartTok".into(),
            Token::End => "EndTok".into(),
            Token::Special(c) => match c {
                '/' => "SlashTok".into(),
                '-' => "HyphenTok".into(),
                '.' => "DotTok".into(),
                ',' => "CommaTok".into(),
                ':' => "ColonTok".into(),
                ';' => "SemiTok".into(),
                '_' => "UnderscoreTok".into(),
                '@' => "AtTok".into(),
                '$' => "DollarTok".into(),
                '%' => "PercentTok".into(),
                '(' => "LParenTok".into(),
                ')' => "RParenTok".into(),
                '+' => "PlusTok".into(),
                '*' => "StarTok".into(),
                '#' => "HashTok".into(),
                '&' => "AmpTok".into(),
                '\'' => "QuoteTok".into(),
                '"' => "DQuoteTok".into(),
                other => format!("CharTok({other})"),
            },
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// The (extensible) set of tokens the learner considers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenSet {
    tokens: Vec<Token>,
}

impl TokenSet {
    /// The default token set used throughout the paper's examples: the
    /// class tokens plus the punctuation singletons that occur in
    /// spreadsheet data.
    pub fn standard() -> Self {
        let mut tokens = vec![
            Token::Upper,
            Token::Lower,
            Token::Alpha,
            Token::Num,
            Token::AlphNum,
            Token::DecNum,
            Token::Whitespace,
            Token::Punct,
            Token::Start,
            Token::End,
        ];
        for c in [
            '/', '-', '.', ',', ':', ';', '_', '@', '$', '%', '(', ')', '+', '*', '#', '&',
        ] {
            tokens.push(Token::Special(c));
        }
        TokenSet { tokens }
    }

    /// A custom token set. Anchors are added if missing.
    pub fn custom(mut tokens: Vec<Token>) -> Self {
        for anchor in [Token::Start, Token::End] {
            if !tokens.contains(&anchor) {
                tokens.push(anchor);
            }
        }
        TokenSet { tokens }
    }

    /// Tokens in this set.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Always false (the anchors are always present).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Index of a token within the set.
    pub fn position(&self, token: Token) -> Option<usize> {
        self.tokens.iter().position(|&t| t == token)
    }
}

impl Default for TokenSet {
    fn default() -> Self {
        TokenSet::standard()
    }
}

/// Precomputed maximal runs of every token of a [`TokenSet`] on one string.
///
/// `runs[i]` lists, in increasing order, the `(start, end)` character ranges
/// of maximal runs of `token_set.tokens()[i]`. Anchors get a single
/// zero-width run. This is computed once per string and shared by position
/// evaluation and position learning.
#[derive(Debug, Clone)]
pub struct StringRuns {
    chars: Vec<char>,
    runs: Vec<Vec<(u32, u32)>>,
}

impl StringRuns {
    /// Computes runs of every token in `set` over `s`.
    pub fn compute(s: &str, set: &TokenSet) -> Self {
        let chars: Vec<char> = s.chars().collect();
        let len = chars.len() as u32;
        let mut runs = Vec::with_capacity(set.len());
        for &token in set.tokens() {
            if token.is_anchor() {
                runs.push(match token {
                    Token::Start => vec![(0, 0)],
                    Token::End => vec![(len, len)],
                    _ => unreachable!(),
                });
                continue;
            }
            let mut token_runs = Vec::new();
            let mut i = 0usize;
            while i < chars.len() {
                if token.matches_char(chars[i]) {
                    let start = i;
                    while i < chars.len() && token.matches_char(chars[i]) {
                        i += 1;
                    }
                    token_runs.push((start as u32, i as u32));
                } else {
                    i += 1;
                }
            }
            runs.push(token_runs);
        }
        StringRuns { chars, runs }
    }

    /// The string as characters.
    pub fn chars(&self) -> &[char] {
        &self.chars
    }

    /// Length in characters.
    pub fn len(&self) -> u32 {
        self.chars.len() as u32
    }

    /// True iff the string is empty.
    pub fn is_empty(&self) -> bool {
        self.chars.is_empty()
    }

    /// Maximal runs of the `idx`-th token of the set.
    pub fn runs_of(&self, idx: usize) -> &[(u32, u32)] {
        &self.runs[idx]
    }

    /// The unique run of token `idx` that ends exactly at `pos`, if any.
    pub fn run_ending_at(&self, idx: usize, pos: u32) -> Option<(u32, u32)> {
        self.runs[idx]
            .binary_search_by_key(&pos, |&(_, e)| e)
            .ok()
            .map(|i| self.runs[idx][i])
    }

    /// The unique run of token `idx` that starts exactly at `pos`, if any.
    pub fn run_starting_at(&self, idx: usize, pos: u32) -> Option<(u32, u32)> {
        self.runs[idx]
            .binary_search_by_key(&pos, |&(s, _)| s)
            .ok()
            .map(|i| self.runs[idx][i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs(s: &str) -> StringRuns {
        StringRuns::compute(s, &TokenSet::standard())
    }

    fn runs_of(s: &str, t: Token) -> Vec<(u32, u32)> {
        let set = TokenSet::standard();
        let r = StringRuns::compute(s, &set);
        r.runs_of(set.position(t).unwrap()).to_vec()
    }

    #[test]
    fn class_membership() {
        assert!(Token::Upper.matches_char('A'));
        assert!(!Token::Upper.matches_char('a'));
        assert!(Token::Num.matches_char('7'));
        assert!(Token::AlphNum.matches_char('7'));
        assert!(Token::AlphNum.matches_char('x'));
        assert!(!Token::AlphNum.matches_char('-'));
        assert!(Token::DecNum.matches_char('.'));
        assert!(Token::Punct.matches_char('$'));
        assert!(!Token::Punct.matches_char(' '));
        assert!(Token::Special('/').matches_char('/'));
        assert!(!Token::Special('/').matches_char('-'));
        assert!(!Token::Start.matches_char('a'));
    }

    #[test]
    fn maximal_runs_basic() {
        assert_eq!(runs_of("ab12 cd", Token::Alpha), vec![(0, 2), (5, 7)]);
        assert_eq!(runs_of("ab12 cd", Token::Num), vec![(2, 4)]);
        assert_eq!(runs_of("ab12 cd", Token::AlphNum), vec![(0, 4), (5, 7)]);
        assert_eq!(runs_of("ab12 cd", Token::Whitespace), vec![(4, 5)]);
    }

    #[test]
    fn decimal_runs_span_dots() {
        assert_eq!(runs_of("$145.67", Token::DecNum), vec![(1, 7)]);
        assert_eq!(runs_of("$145.67", Token::Num), vec![(1, 4), (5, 7)]);
    }

    #[test]
    fn special_runs_merge_repeats() {
        assert_eq!(runs_of("a--b-c", Token::Special('-')), vec![(1, 3), (4, 5)]);
    }

    #[test]
    fn anchors_are_zero_width() {
        assert_eq!(runs_of("abc", Token::Start), vec![(0, 0)]);
        assert_eq!(runs_of("abc", Token::End), vec![(3, 3)]);
        assert_eq!(runs_of("", Token::Start), vec![(0, 0)]);
        assert_eq!(runs_of("", Token::End), vec![(0, 0)]);
    }

    #[test]
    fn run_lookup_by_boundary() {
        let set = TokenSet::standard();
        let r = StringRuns::compute("ab12 cd", &set);
        let num = set.position(Token::Num).unwrap();
        assert_eq!(r.run_ending_at(num, 4), Some((2, 4)));
        assert_eq!(r.run_ending_at(num, 3), None);
        assert_eq!(r.run_starting_at(num, 2), Some((2, 4)));
        assert_eq!(r.run_starting_at(num, 1), None);
    }

    #[test]
    fn unicode_counts_chars_not_bytes() {
        let r = runs("héllo");
        assert_eq!(r.len(), 5);
        // 'é' is not ASCII-alphabetic: Alpha splits around it.
        assert_eq!(runs_of("héllo", Token::Alpha), vec![(0, 1), (2, 5)]);
    }

    #[test]
    fn token_names_match_paper() {
        assert_eq!(Token::AlphNum.name(), "AlphTok");
        assert_eq!(Token::Special('/').name(), "SlashTok");
        assert_eq!(Token::Start.to_string(), "StartTok");
    }

    #[test]
    fn custom_set_keeps_anchors() {
        let set = TokenSet::custom(vec![Token::Num]);
        assert!(set.position(Token::Start).is_some());
        assert!(set.position(Token::End).is_some());
        assert_eq!(set.len(), 3);
    }
}
