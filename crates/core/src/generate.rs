//! `GenerateStr_u`: synthesis of all `Lu` programs consistent with one
//! example (§5.3).
//!
//! The procedure is `GenerateStr'_t` followed by a final `GenerateStr_s`:
//!
//! 1. **Relaxed reachability.** Like `GenerateStr_t`, but a cell `T[C, r]`
//!    is reachable from the frontier when it can be *syntactically
//!    assembled* from known strings — not only when it equals one. Per the
//!    paper's practical restriction we first require a substring relation
//!    (`T[C,r] ⊑ w` or `w ⊑ T[C,r]` for some known `w`), then require the
//!    assembly DAG to contain an expression using at least one non-constant
//!    atom ("uses a variable from σ ∪ η̃").
//! 2. **Generalized conditions.** For an activated row, each candidate-key
//!    column `C'` gets the predicate `C' = GenerateStr_s(σ ∪ η̃, T[C', r])`
//!    — a nested DAG whose constant paths subsume `Lt`'s `C' = s`.
//! 3. **Top-level DAG.** `GenerateStr_s(σ ∪ η̃, s)` over all reachable
//!    strings builds the output DAG whose atoms reference lookup nodes.
//!
//! The iteration bound `k` defaults to the number of tables (§4.3).

use std::collections::HashSet;
use std::hash::{BuildHasher, BuildHasherDefault};
use std::sync::Arc;

use sst_lookup::NodeId;
use sst_syntactic::{generate_dag, generate_dag_prepared, Dag, GenOptions, PreparedSources};
use sst_tables::{ColId, Database, IntHasher, IntMap, RowId, Symbol, SymbolMap, TableId};

use crate::dstruct::{GenCondU, GenLookupU, GenPredU, SemDStruct, SemNode};

/// Options for `Lu` generation.
#[derive(Debug, Clone)]
pub struct LuOptions {
    /// Reachability depth bound; `None` = number of tables.
    pub max_depth: Option<usize>,
    /// Syntactic-layer options (token set, context bound).
    pub syntactic: GenOptions,
    /// §5.3's "stronger restriction": only consider cells in a substring
    /// relation with a known string. `true` (the paper's experimental
    /// setting, and ours) trades a sliver of completeness for large
    /// speedups; `false` gates on assemblability alone.
    pub substring_gate: bool,
}

impl Default for LuOptions {
    fn default() -> Self {
        LuOptions {
            max_depth: None,
            syntactic: GenOptions::default(),
            substring_gate: true,
        }
    }
}

impl LuOptions {
    /// Effective depth bound for a database.
    pub fn depth_for(&self, db: &Database) -> usize {
        self.max_depth.unwrap_or_else(|| db.len().max(1))
    }
}

/// Builds the `Du` structure of all `Lu` programs consistent with one
/// input-output example. Never fails: the all-constant program always
/// exists (ranking deprioritizes it).
pub fn generate_str_u(
    db: &Database,
    inputs: &[&str],
    output: &str,
    opts: &LuOptions,
) -> SemDStruct {
    let k = opts.depth_for(db);
    let mut d = SemDStruct::default();
    let mut val_to_node: SymbolMap<NodeId> = SymbolMap::default();
    // Hash index over each node's program list: hash → prog positions.
    // Re-activated rows re-derive identical `Select`s across steps; the
    // index turns the seed's linear `Vec::contains` (a deep compare per
    // existing program) into one hash plus collision checks.
    let hasher = BuildHasherDefault::<IntHasher>::default();
    let mut prog_index: Vec<IntMap<u64, Vec<u32>>> = Vec::new();
    let insert_prog = |d: &mut SemDStruct,
                       prog_index: &mut Vec<IntMap<u64, Vec<u32>>>,
                       node: NodeId,
                       prog: GenLookupU| {
        let progs = &mut d.nodes[node.0 as usize].progs;
        let h = hasher.hash_one(&prog);
        let bucket = prog_index[node.0 as usize].entry(h).or_default();
        if bucket.iter().any(|&i| progs[i as usize] == prog) {
            return;
        }
        bucket.push(progs.len() as u32);
        progs.push(prog);
    };

    let mut frontier: Vec<NodeId> = Vec::new();
    for (i, value) in inputs.iter().enumerate() {
        if value.is_empty() {
            continue;
        }
        let sym = Symbol::intern(value);
        let node = match val_to_node.get(&sym) {
            Some(&id) => id,
            None => {
                let id = NodeId(d.nodes.len() as u32);
                d.nodes.push(SemNode {
                    vals: vec![sym],
                    progs: Vec::new(),
                });
                prog_index.push(IntMap::default());
                val_to_node.insert(sym, id);
                frontier.push(id);
                id
            }
        };
        insert_prog(&mut d, &mut prog_index, node, GenLookupU::Var(i as u32));
    }

    for _step in 0..k {
        if frontier.is_empty() {
            break;
        }
        // Candidate cells: substring-related to some frontier string (the
        // paper's experimental restriction), or every cell when the gate
        // is disabled.
        let mut candidates: HashSet<(TableId, RowId, ColId)> = HashSet::new();
        if opts.substring_gate {
            for &node in &frontier {
                let w = d.nodes[node.0 as usize].vals[0].as_str();
                for (tid, table) in db.iter() {
                    for (cell, _) in table.cells_related_to(w) {
                        candidates.insert((tid, cell.row, cell.col));
                    }
                }
            }
        } else {
            for (tid, table) in db.iter() {
                for (cell, v) in table.iter_cells() {
                    if !v.is_empty() {
                        candidates.insert((tid, cell.row, cell.col));
                    }
                }
            }
        }
        // NOTE: cells hit by an earlier frontier are *revisited* when the
        // current frontier relates to them again — the paper's line-15
        // behavior of adding a Select with the updated condition set `B`
        // (richer sources). Duplicate Selects are deduplicated on insert.
        let mut ordered: Vec<(TableId, RowId, ColId)> = candidates.into_iter().collect();
        ordered.sort_unstable();

        // Snapshot σ ∪ η̃ and prepare it once: token classification runs
        // once per source string per step, and every probe below reuses the
        // cached runs and position sets. (Symbols resolve to &'static str,
        // so the snapshot borrows nothing from `d`.)
        let sources = current_sources(&d);
        let prepared = PreparedSources::new(&sources, &opts.syntactic);

        // Gate: the matched cell must be assemblable with ≥1 non-constant
        // atom from the *current* sources.
        let mut passed: Vec<(TableId, RowId, ColId)> = Vec::new();
        for &(tid, row, col) in &ordered {
            let value = db.table(tid).cell(col, row);
            let dag = generate_dag_prepared(&prepared, value);
            if dag.has_nonconst_program() {
                passed.push((tid, row, col));
            }
        }

        // Pass 1: materialize nodes for the *other* columns of activated
        // rows — the matched column itself is not a lookup output (it is
        // merely assemblable), so it only becomes a node if some other
        // activation reaches it.
        let mut next_frontier: Vec<NodeId> = Vec::new();
        for &(tid, row, col) in &passed {
            let table = db.table(tid);
            for c in 0..table.width() as ColId {
                if c == col {
                    continue;
                }
                let value = table.cell_sym(c, row);
                if value.is_empty() || val_to_node.contains_key(&value) {
                    continue;
                }
                let id = NodeId(d.nodes.len() as u32);
                d.nodes.push(SemNode {
                    vals: vec![value],
                    progs: Vec::new(),
                });
                prog_index.push(IntMap::default());
                val_to_node.insert(value, id);
                next_frontier.push(id);
            }
        }

        // Pass 2: build B (predicate DAGs over the *pre-expansion* sources,
        // matching the paper's σ ∪ η̃ at this step) once per activated row,
        // and attach Arc-shared Selects.
        for &(tid, row, col) in &passed {
            let table = db.table(tid);
            let conds: Vec<GenCondU> = table
                .candidate_keys()
                .iter()
                .enumerate()
                .map(|(key_idx, key)| GenCondU {
                    key: key_idx,
                    preds: key
                        .iter()
                        .map(|&kc| GenPredU {
                            col: kc,
                            dag: generate_dag_prepared(&prepared, table.cell(kc, row)),
                        })
                        .collect(),
                })
                .collect();
            if conds.is_empty() {
                continue;
            }
            let conds = Arc::new(conds);
            for c in 0..table.width() as ColId {
                if c == col {
                    continue;
                }
                let value = table.cell_sym(c, row);
                if value.is_empty() {
                    continue;
                }
                let node = val_to_node[&value];
                insert_prog(
                    &mut d,
                    &mut prog_index,
                    node,
                    GenLookupU::Select {
                        col: c,
                        table: tid,
                        conds: Arc::clone(&conds),
                    },
                );
            }
        }
        frontier = next_frontier;
    }

    // Top-level DAG over every known string.
    let sources = current_sources(&d);
    let top: Dag<NodeId> = generate_dag(&sources, output, &opts.syntactic);
    d.top = Some(top);
    d
}

/// Snapshot of σ ∪ η̃: every known string as an atom source. Symbols
/// resolve to `&'static str`, so the snapshot borrows nothing from `d`.
fn current_sources(d: &SemDStruct) -> Vec<(NodeId, &'static str)> {
    d.nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (NodeId(i as u32), n.vals[0].as_str()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_sem;
    use crate::rank::LuRankWeights;
    use sst_tables::Table;

    fn comp_db() -> Database {
        Database::from_tables(vec![Table::new(
            "Comp",
            vec!["Id", "Name"],
            vec![
                vec!["c1", "Microsoft"],
                vec!["c2", "Google"],
                vec!["c3", "Apple"],
                vec!["c4", "Facebook"],
                vec!["c5", "IBM"],
                vec!["c6", "Xerox"],
            ],
        )
        .unwrap()])
        .unwrap()
    }

    fn bike_db() -> Database {
        Database::from_tables(vec![Table::new(
            "BikePrices",
            vec!["Bike", "Price"],
            vec![
                vec!["Ducati100", "10,000"],
                vec!["Ducati125", "12,500"],
                vec!["Ducati250", "18,000"],
                vec!["Honda125", "11,500"],
                vec!["Honda250", "19,000"],
            ],
        )
        .unwrap()])
        .unwrap()
    }

    #[test]
    fn exact_lookup_still_works() {
        let db = comp_db();
        let d = generate_str_u(&db, &["c2"], "Google", &LuOptions::default());
        assert!(d.has_programs());
        // The top DAG's full edge should offer a lookup-node atom.
        assert!(d.count(2) > sst_counting::BigUint::one());
    }

    #[test]
    fn example6_substring_indexed_lookup_reachable() {
        // "c4 c3 c1" -> "Facebook Apple Microsoft": cells c4/c3/c1 are
        // substrings of the input, so their rows activate and the names
        // become sources for the top DAG.
        let db = comp_db();
        let d = generate_str_u(
            &db,
            &["c4 c3 c1"],
            "Facebook Apple Microsoft",
            &LuOptions::default(),
        );
        assert!(d.has_programs());
        // Extraction must produce a program that generalizes.
        let w = LuRankWeights::default();
        let prog = w.best(&d, 2).expect("top program");
        let got = eval_sem(
            &prog.expr,
            &db,
            &["c2 c5 c6"],
            &LuOptions::default().syntactic.token_set,
        );
        assert_eq!(got.as_deref(), Some("Google IBM Xerox"));
    }

    #[test]
    fn example5_concat_indexed_lookup_reachable() {
        let db = bike_db();
        let d = generate_str_u(&db, &["Honda", "125"], "11,500", &LuOptions::default());
        assert!(d.has_programs());
        let w = LuRankWeights::default();
        let prog = w.best(&d, 2).expect("top program");
        let got = eval_sem(
            &prog.expr,
            &db,
            &["Ducati", "250"],
            &LuOptions::default().syntactic.token_set,
        );
        assert_eq!(got.as_deref(), Some("18,000"));
    }

    #[test]
    fn unrelated_output_const_only() {
        let db = comp_db();
        let d = generate_str_u(&db, &["zzz"], "!!??!!", &LuOptions::default());
        // Still has (constant) programs...
        assert!(d.has_programs());
        // ...and exactly the constant decompositions: no lookup atoms.
        assert_eq!(d.len(), 1, "no cells relate to zzz");
    }

    #[test]
    fn empty_output_has_empty_program() {
        let db = comp_db();
        let d = generate_str_u(&db, &["c1"], "", &LuOptions::default());
        assert!(d.has_programs());
        assert_eq!(d.count(1).to_u64(), Some(1));
    }

    #[test]
    fn depth_bound_limits_expansion() {
        let db = comp_db();
        let opts = LuOptions {
            max_depth: Some(0),
            ..Default::default()
        };
        let d = generate_str_u(&db, &["c2"], "Google", &opts);
        // No reachability: only the input node exists and the output is
        // only constant-representable.
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn disabling_gate_finds_concat_assembled_keys() {
        // Key "XY" is assemblable from "X-Y" but not substring-related to
        // it: the paper's general condition (gate off) reaches the row,
        // the experimental restriction (gate on) does not.
        let db = Database::from_tables(vec![Table::new(
            "Pairs",
            vec!["Key", "Val"],
            vec![vec!["XY", "ok1"], vec!["ZW", "ok2"]],
        )
        .unwrap()])
        .unwrap();
        let gated = generate_str_u(&db, &["X-Y"], "ok1", &LuOptions::default());
        assert_eq!(gated.len(), 1, "gate should block the XY row");
        let open = generate_str_u(
            &db,
            &["X-Y"],
            "ok1",
            &LuOptions {
                substring_gate: false,
                ..Default::default()
            },
        );
        assert!(open.len() > 1, "general condition should reach the row");
        let vals: Vec<&str> = open.nodes.iter().map(|n| n.vals[0].as_str()).collect();
        assert!(vals.contains(&"ok1"));
        // The learned program under the open gate generalizes.
        let w = LuRankWeights::default();
        let prog = w.best(&open, 2).unwrap();
        let got = eval_sem(
            &prog.expr,
            &db,
            &["Z-W"],
            &LuOptions::default().syntactic.token_set,
        );
        assert_eq!(got.as_deref(), Some("ok2"));
    }

    #[test]
    fn substring_relation_gate_blocks_unrelated_cells() {
        let db = comp_db();
        let d = generate_str_u(&db, &["c2"], "Google", &LuOptions::default());
        // c2's row activates; unrelated rows (c4, Facebook, ...) must not.
        let vals: Vec<&str> = d.nodes.iter().map(|n| n.vals[0].as_str()).collect();
        assert!(vals.contains(&"Google"));
        assert!(!vals.contains(&"Facebook"));
    }
}
