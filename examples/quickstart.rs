//! Quickstart: learn a join transformation through an `Engine` session.
//!
//! This is the paper's Example 2 — an Excel user wants to map customer
//! names to sale prices, where the connection runs through two helper
//! tables joined on (address, street). The `Engine`/`Session` front-end
//! owns the learning loop; the user only supplies examples.
//!
//! Run with: `cargo run --release --example quickstart`

use semantic_strings::prelude::*;

fn main() {
    // The user's two helper tables, exactly as posted on the forum.
    let cust_data = Table::new(
        "CustData",
        vec!["Name", "Addr", "St"],
        vec![
            vec!["Sean Riley", "432", "15th"],
            vec!["Peter Shaw", "24", "18th"],
            vec!["Mike Henry", "432", "18th"],
            vec!["Gary Lamb", "104", "12th"],
        ],
    )
    .expect("valid table");
    let sale = Table::new(
        "Sale",
        vec!["Addr", "St", "Date", "Price"],
        vec![
            vec!["24", "18th", "5/21", "110"],
            vec!["104", "12th", "5/23", "225"],
            vec!["432", "18th", "5/20", "2015"],
            vec!["432", "15th", "5/24", "495"],
        ],
    )
    .expect("valid table");
    // The serving front-end: an Engine owns the (shareable) database, the
    // warm memo plane and the worker pool; a Session is one conversation.
    let engine = Engine::from_tables(vec![cust_data, sale]).expect("valid database");
    let mut session = engine.session();
    session.add_example(Example::new(vec!["Peter Shaw"], "110"));
    session.add_example(Example::new(vec!["Gary Lamb"], "225"));

    let program = session.top().expect("a consistent transformation exists");
    println!("Learned transformation:\n  {program}\n");
    println!("In English:\n  {}\n", program.paraphrase());
    println!(
        "The structure represents {} consistent programs in {} terminals.\n",
        session.count().unwrap().to_scientific(),
        session.size().unwrap()
    );

    // Fill the remaining spreadsheet rows.
    for name in ["Mike Henry", "Sean Riley"] {
        let price = program.run(&[name]).expect("evaluates");
        println!("{name:<12} -> {price}");
    }
    assert_eq!(program.run(&["Mike Henry"]).as_deref(), Some("2015"));
    assert_eq!(program.run(&["Sean Riley"]).as_deref(), Some("495"));
    println!("\nAll held-out rows correct.");
}
