//! Inverted value→cell index over interned symbols.
//!
//! `GenerateStr_t` (Fig. 5a, line 9) iterates over "each table T, col C,
//! row r s.t. `T[C,r] = val(η)`" for every frontier node η. Scanning all
//! tables per frontier string would be quadratic; this index answers the
//! query in O(1) per distinct value. Keys are [`Symbol`]s, so a cross-table
//! probe hashes one `u32` once — no per-table string hashing, no `String`
//! allocation.
//!
//! The index is **incrementally maintainable**: [`ValueIndex::insert_cell`]
//! and [`ValueIndex::remove_cell`] splice one `CellRef` in or out of its
//! value's (row, col)-sorted list — the same order a fresh
//! [`ValueIndex::build`] produces — so an incrementally-maintained index is
//! structurally equal to a rebuilt one (pinned by the `incremental_index`
//! differential harness).

use crate::intern::{Symbol, SymbolMap};
use crate::table::{CellRef, ColId, Table};

/// Inverted index from interned cell value to every cell holding it, each
/// list ascending by `(row, col)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValueIndex {
    cells: SymbolMap<Vec<CellRef>>,
}

impl ValueIndex {
    /// Builds the index over one table's live cells.
    pub fn build(table: &Table) -> Self {
        let mut cells: SymbolMap<Vec<CellRef>> = SymbolMap::default();
        cells.reserve(table.len() * table.width());
        for r in table.row_ids() {
            for c in 0..table.width() {
                let v = table.cell_sym(c as ColId, r);
                cells.entry(v).or_default().push(CellRef {
                    col: c as ColId,
                    row: r,
                });
            }
        }
        ValueIndex { cells }
    }

    /// Records that `cell` now holds `value`, keeping the list's
    /// (row, col) order. Idempotent for an already-present cell.
    pub fn insert_cell(&mut self, value: Symbol, cell: CellRef) {
        let list = self.cells.entry(value).or_default();
        if let Err(pos) = list.binary_search_by_key(&(cell.row, cell.col), |c| (c.row, c.col)) {
            list.insert(pos, cell);
        }
    }

    /// Records that `cell` no longer holds `value`; a vacated value leaves
    /// the map entirely (so equality with a fresh build holds).
    pub fn remove_cell(&mut self, value: Symbol, cell: CellRef) {
        if let Some(list) = self.cells.get_mut(&value) {
            if let Ok(pos) = list.binary_search_by_key(&(cell.row, cell.col), |c| (c.row, c.col)) {
                list.remove(pos);
            }
            if list.is_empty() {
                self.cells.remove(&value);
            }
        }
    }

    /// All cells whose content equals `value`.
    pub fn cells_equal(&self, value: Symbol) -> &[CellRef] {
        self.cells.get(&value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Distinct values stored in the table.
    pub fn distinct_values(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.cells.keys().map(|s| s.as_str())
    }

    /// Number of distinct values.
    pub fn distinct_len(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(
            "T",
            vec!["A", "B"],
            vec![vec!["x", "y"], vec!["y", "z"], vec!["x", "x"]],
        )
        .unwrap()
    }

    #[test]
    fn equal_lookup_finds_all_cells() {
        let idx = ValueIndex::build(&t());
        let mut hits = idx.cells_equal(Symbol::intern("x")).to_vec();
        hits.sort();
        assert_eq!(
            hits,
            vec![
                CellRef { col: 0, row: 0 },
                CellRef { col: 0, row: 2 },
                CellRef { col: 1, row: 2 },
            ]
        );
        assert_eq!(idx.cells_equal(Symbol::intern("nope")), &[]);
    }

    #[test]
    fn distinct_values_counted() {
        let idx = ValueIndex::build(&t());
        assert_eq!(idx.distinct_len(), 3);
        let mut vals: Vec<&str> = idx.distinct_values().collect();
        vals.sort();
        assert_eq!(vals, vec!["x", "y", "z"]);
    }

    #[test]
    fn empty_table_empty_index() {
        let t = Table::new_with_key_width("T", vec!["A"], Vec::<Vec<&str>>::new(), 1).unwrap();
        let idx = ValueIndex::build(&t);
        assert_eq!(idx.distinct_len(), 0);
    }

    #[test]
    fn incremental_edits_equal_rebuild() {
        let mut table = t();
        let mut idx = ValueIndex::build(&table);
        // Insert a row.
        let ids = table.insert_rows(vec![vec!["y", "w"]]).unwrap();
        let r = ids[0];
        idx.insert_cell(Symbol::intern("y"), CellRef { col: 0, row: r });
        idx.insert_cell(Symbol::intern("w"), CellRef { col: 1, row: r });
        assert_eq!(idx, ValueIndex::build(&table));
        // Update a cell.
        let old = table.update_cell(1, 0, "q").unwrap();
        idx.remove_cell(old, CellRef { col: 1, row: 0 });
        idx.insert_cell(Symbol::intern("q"), CellRef { col: 1, row: 0 });
        assert_eq!(idx, ValueIndex::build(&table));
        // Delete a row; the vacated value "z" leaves the map.
        for (r, vals) in table.delete_rows(&[1]).unwrap() {
            for (c, v) in vals.into_iter().enumerate() {
                idx.remove_cell(
                    v,
                    CellRef {
                        col: c as ColId,
                        row: r,
                    },
                );
            }
        }
        assert_eq!(idx, ValueIndex::build(&table));
        assert!(idx.cells_equal(Symbol::intern("z")).is_empty());
    }
}
