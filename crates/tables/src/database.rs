//! A named collection of tables with per-table value indexes.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::TableError;
use crate::intern::Symbol;
use crate::substring_index::SubstringIndex;
use crate::table::{CellRef, Table};
use crate::value_index::ValueIndex;

/// Index of a table within a [`Database`].
pub type TableId = u32;

/// Process-global source of fresh database epochs. Every mutation event on
/// any `Database` draws a new value, so two databases (or two states of one
/// database) never share an epoch unless one is an unmutated clone of the
/// other — in which case their contents are identical and serving cached
/// results across them is sound.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// The relational database the synthesizer runs against: the user's helper
/// tables plus any background-knowledge tables (§6).
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: Vec<Table>,
    indexes: Vec<ValueIndex>,
    sub_indexes: Vec<SubstringIndex>,
    by_name: HashMap<String, TableId>,
    /// Mutation epoch: bumped to a globally fresh value by every
    /// [`Database::add_table`]. Caches keyed on synthesis results (the
    /// `DagCache` upstream) compare epochs to detect background-table
    /// mutation between learning steps. `0` = the empty database.
    epoch: u64,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a database from tables; names must be unique.
    pub fn from_tables(tables: Vec<Table>) -> Result<Self, TableError> {
        let mut db = Database::new();
        for t in tables {
            db.add_table(t)?;
        }
        Ok(db)
    }

    /// Adds a table and builds its value and substring indexes; returns its
    /// id.
    pub fn add_table(&mut self, table: Table) -> Result<TableId, TableError> {
        if self.by_name.contains_key(table.name()) {
            return Err(TableError::DuplicateTable(table.name().to_string()));
        }
        let id = self.tables.len() as TableId;
        self.by_name.insert(table.name().to_string(), id);
        self.indexes.push(ValueIndex::build(&table));
        self.sub_indexes.push(SubstringIndex::build(&table));
        self.tables.push(table);
        self.epoch = NEXT_EPOCH.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// The database's mutation epoch: changes (to a process-globally fresh
    /// value) whenever a table is added. Equal epochs imply equal contents,
    /// which is the invariant result caches rely on.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True iff the database holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Table by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id as usize]
    }

    /// Value index of a table.
    pub fn value_index(&self, id: TableId) -> &ValueIndex {
        &self.indexes[id as usize]
    }

    /// Substring index of a table.
    pub fn substring_index(&self, id: TableId) -> &SubstringIndex {
        &self.sub_indexes[id as usize]
    }

    /// Table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// Table by name.
    pub fn table_by_name(&self, name: &str) -> Result<&Table, TableError> {
        self.table_id(name)
            .map(|id| self.table(id))
            .ok_or_else(|| TableError::UnknownTable(name.to_string()))
    }

    /// Iterates `(TableId, &Table)`.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (i as TableId, t))
    }

    /// All cells across all tables equal to the interned `value`. One hash
    /// of a `u32` per table — the `GenerateStr_t` frontier probe.
    pub fn cells_equal(&self, value: Symbol) -> impl Iterator<Item = (TableId, CellRef)> + '_ {
        self.indexes.iter().enumerate().flat_map(move |(tid, idx)| {
            idx.cells_equal(value)
                .iter()
                .map(move |&cell| (tid as TableId, cell))
        })
    }

    /// All cells across all tables in a substring relation with `s` (cell
    /// content ⊑ `s` or `s` ⊑ cell content) — the §5.3 relaxed-reachability
    /// frontier probe, answered by the per-table [`SubstringIndex`]es
    /// instead of a full cell scan. Empty probes and empty cells never
    /// relate. Order is unspecified; callers canonicalize.
    pub fn cells_related_to<'a>(
        &'a self,
        s: &'a str,
    ) -> impl Iterator<Item = (TableId, CellRef)> + 'a {
        self.sub_indexes
            .iter()
            .zip(self.indexes.iter())
            .enumerate()
            .flat_map(move |(tid, (sub, vidx))| {
                sub.related_values(s).into_iter().flat_map(move |val| {
                    vidx.cells_equal(val)
                        .iter()
                        .map(move |&cell| (tid as TableId, cell))
                })
            })
    }

    /// Total number of cells, used to bound the reachability iteration.
    pub fn total_cells(&self) -> usize {
        self.tables.iter().map(|t| t.len() * t.width()).sum()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tables {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        Database::from_tables(vec![
            Table::new("A", vec!["X"], vec![vec!["1"], vec!["2"]]).unwrap(),
            Table::new("B", vec!["Y", "Z"], vec![vec!["2", "3"]]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let db = db();
        assert_eq!(db.len(), 2);
        assert_eq!(db.table_id("B"), Some(1));
        assert_eq!(db.table(1).name(), "B");
        assert_eq!(db.table_by_name("A").unwrap().len(), 2);
        assert!(matches!(
            db.table_by_name("C"),
            Err(TableError::UnknownTable(_))
        ));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db();
        let err = db
            .add_table(Table::new("A", vec!["Q"], vec![vec!["9"]]).unwrap())
            .unwrap_err();
        assert_eq!(err, TableError::DuplicateTable("A".into()));
    }

    #[test]
    fn cross_table_cell_query() {
        let db = db();
        let hits: Vec<(TableId, CellRef)> = db.cells_equal(Symbol::intern("2")).collect();
        assert_eq!(db.cells_equal(Symbol::intern("never-a-cell")).count(), 0);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[1].0, 1);
    }

    #[test]
    fn cross_table_substring_query_matches_scan() {
        let db = Database::from_tables(vec![
            Table::new("C", vec!["Id", "Name"], vec![vec!["c1", "Microsoft"]]).unwrap(),
            Table::new("D", vec!["K", "V"], vec![vec!["soft", "c1 c2"]]).unwrap(),
        ])
        .unwrap();
        for probe in ["c1", "soft", "Microsoft Excel", "c1 c2 c3", "", "zz"] {
            let mut indexed: Vec<(TableId, CellRef)> = db.cells_related_to(probe).collect();
            indexed.sort_unstable();
            let mut scanned: Vec<(TableId, CellRef)> = db
                .iter()
                .flat_map(|(tid, t)| t.cells_related_to(probe).map(move |(c, _)| (tid, c)))
                .collect();
            scanned.sort_unstable();
            assert_eq!(indexed, scanned, "probe {probe:?}");
        }
    }

    #[test]
    fn epoch_bumps_on_every_add() {
        let mut d = Database::new();
        assert_eq!(d.epoch(), 0, "empty database has the zero epoch");
        d.add_table(Table::new("A", vec!["X"], vec![vec!["1"]]).unwrap())
            .unwrap();
        let e1 = d.epoch();
        assert_ne!(e1, 0);
        // An unmutated clone shares the epoch (contents are identical)...
        let clone = d.clone();
        assert_eq!(clone.epoch(), e1);
        // ...but any further mutation diverges, on either copy.
        d.add_table(Table::new("B", vec!["Y"], vec![vec!["2"]]).unwrap())
            .unwrap();
        assert_ne!(d.epoch(), e1);
        assert_eq!(clone.epoch(), e1);
        // Fresh epochs are globally unique, not per-instance counters.
        let other =
            Database::from_tables(vec![Table::new("A", vec!["X"], vec![vec!["1"]]).unwrap()])
                .unwrap();
        assert_ne!(other.epoch(), e1);
    }

    #[test]
    fn totals() {
        let db = db();
        assert_eq!(db.total_cells(), 2 + 2);
        assert!(!db.is_empty());
        assert_eq!(db.iter().count(), 2);
    }

    #[test]
    fn display_concatenates_tables() {
        let s = db().to_string();
        assert!(s.contains("A:"));
        assert!(s.contains("B:"));
    }
}
