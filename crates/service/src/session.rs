//! The [`Session`]: one §3.2 conversation as a stateful handle.

use std::sync::Arc;
use std::time::Duration;

use sst_core::{
    distinguishing_input, highlight_ambiguous, CompiledProgram, Example, LearnedPrograms, Program,
    SynthesisError,
};
use sst_counting::BigUint;
use sst_tables::{Table, TableId};

use crate::engine::{with_deadline_error, Engine};
use crate::types::{ServiceError, SessionStatus};

/// The cached result of the session's last learn, tagged with the state
/// it was computed under so staleness is a cheap comparison.
#[derive(Debug)]
struct CachedLearn {
    /// Database epoch at learn time.
    db_epoch: u64,
    /// Content hash of the example sequence the learn saw (not its
    /// length: [`Session::remove_example`] followed by a different
    /// [`Session::add_example`] leaves the count unchanged but must
    /// invalidate the cached learn — pinned by a regression test in
    /// `tests/service.rs`).
    examples_hash: u64,
    learned: LearnedPrograms,
    /// The top-ranked program lowered to bytecode, filled on first apply —
    /// cached per `(db_epoch, examples_hash)` by construction (this struct
    /// is replaced whenever either moves), so repeated [`Session::run`] /
    /// [`Session::run_column`] calls neither re-rank nor re-interpret.
    compiled_top: Option<Arc<CompiledProgram>>,
}

/// Order-sensitive FNV-1a content hash of an example sequence, with every
/// string length-prefixed so concatenation boundaries cannot collide
/// (`["ab"] + "c"` vs `["a"] + "bc"`).
fn examples_hash(examples: &[Example]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |bytes: &[u8]| {
        h ^= bytes.len() as u64;
        h = h.wrapping_mul(PRIME);
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for example in examples {
        mix(&[0xFF]);
        for input in &example.inputs {
            mix(input.as_bytes());
        }
        mix(&[0xFE]);
        mix(example.output.as_bytes());
    }
    h
}

/// One interactive learning conversation (the §3.2 protocol), backed by a
/// shared [`Engine`].
///
/// The session accumulates examples ([`Session::add_example`]) and watches
/// the spreadsheet's input rows ([`Session::watch_inputs`]); every query —
/// [`Session::status`], [`Session::top_k`], [`Session::run`],
/// [`Session::paraphrase`] — learns lazily over the current examples and
/// caches the result, so callers never hand-roll the re-learn loop. The
/// learn itself runs through the engine's shared memo plane: re-learning
/// on a grown example prefix replays earlier generations and intersections
/// as memo hits, and a table added through [`Engine::add_table`] (or
/// [`Session::add_table`]) invalidates every session's cached learn at
/// once via the database epoch.
///
/// Sessions are independent: two sessions on one engine hold separate
/// conversations over the same background knowledge.
#[derive(Debug)]
pub struct Session {
    engine: Engine,
    examples: Vec<Example>,
    inputs: Vec<Vec<String>>,
    learned: Option<CachedLearn>,
    /// Wall-clock budget for each (re-)learn this session triggers; `None`
    /// learns without a deadline. Set per request by the serving layer
    /// (the `deadline-ms` header or the server default).
    budget: Option<Duration>,
}

/// What [`Session::converge_with`] reached: how many examples the oracle
/// had to supply, and whether the top program ended up correct on every
/// row within the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConvergence {
    /// Examples supplied when the loop stopped.
    pub examples_used: usize,
    /// Whether the top-ranked program was correct on every ground-truth
    /// row within the example budget.
    pub converged: bool,
}

impl Session {
    pub(crate) fn new(engine: Engine) -> Self {
        Session {
            engine,
            examples: Vec::new(),
            inputs: Vec::new(),
            learned: None,
            budget: None,
        }
    }

    /// Sets (or clears) the wall-clock budget covering each learn this
    /// session triggers. A learn the deadline interrupts is cooperatively
    /// cancelled — all shared memos stay valid, the session's cached learn
    /// is untouched — and the query answers
    /// [`ServiceError::DeadlineExceeded`]; the deadline starts ticking at
    /// the query that triggers the learn, not at `set_budget`.
    pub fn set_budget(&mut self, budget: Option<Duration>) {
        self.budget = budget;
    }

    /// The session's learn budget, if any.
    pub fn budget(&self) -> Option<Duration> {
        self.budget
    }

    /// The engine this session learns through.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The examples supplied so far, in order.
    pub fn examples(&self) -> &[Example] {
        &self.examples
    }

    /// Supplies one more input-output example (a §3.2 user fix). The next
    /// query re-learns over the grown prefix — through the shared memo
    /// plane, so earlier examples and example-pair intersections replay
    /// from memory.
    pub fn add_example(&mut self, example: Example) {
        self.examples.push(example);
    }

    /// Supplies several examples at once.
    pub fn add_examples(&mut self, examples: impl IntoIterator<Item = Example>) {
        self.examples.extend(examples);
    }

    /// Retracts the example at `index` (a §3.2 user un-fix: the user
    /// realizes a supplied output was wrong). The next query re-learns
    /// over the remaining sequence — the cached learn is keyed on example
    /// *content*, so removing one example and adding a different one
    /// never serves the stale set even though the count is unchanged.
    pub fn remove_example(&mut self, index: usize) -> Example {
        self.examples.remove(index)
    }

    /// Clears the conversation's examples entirely (watched inputs are
    /// kept).
    pub fn clear_examples(&mut self) {
        self.examples.clear();
    }

    /// Declares the spreadsheet's input rows — what [`Session::status`]
    /// scans for ambiguity. Replaces any previously watched rows.
    pub fn watch_inputs(&mut self, inputs: Vec<Vec<String>>) {
        self.inputs = inputs;
    }

    /// Adds one watched input row.
    pub fn watch_input(&mut self, input: Vec<String>) {
        self.inputs.push(input);
    }

    /// The watched input rows.
    pub fn inputs(&self) -> &[Vec<String>] {
        &self.inputs
    }

    /// Adds a background table through the engine — visible to **all**
    /// sessions, with exactly one epoch bump (see [`Engine::add_table`]).
    pub fn add_table(&self, table: Table) -> Result<TableId, ServiceError> {
        self.engine.add_table(table)
    }

    /// Where the conversation stands (§3.2): [`SessionStatus::Converged`]
    /// when the engine's `top_k` best programs agree on every watched
    /// input row, otherwise the ambiguous rows the user should check.
    /// With no examples yet, every watched row needs one.
    pub fn status(&mut self) -> Result<SessionStatus, ServiceError> {
        if self.examples.is_empty() {
            return Ok(SessionStatus::NeedsExamples {
                ambiguous_inputs: self.inputs.clone(),
            });
        }
        let k = self.engine.options().top_k;
        self.ensure_learned()?;
        let learned = &self.learned.as_ref().expect("just ensured").learned;
        let flagged = highlight_ambiguous(learned, &self.inputs, k);
        Ok(if flagged.is_empty() {
            SessionStatus::Converged
        } else {
            SessionStatus::NeedsExamples {
                ambiguous_inputs: flagged.iter().map(|&i| self.inputs[i].clone()).collect(),
            }
        })
    }

    /// The first watched row on which at least two of the `top_k` best
    /// programs disagree — the cheapest question to ask the user (§3.2,
    /// oracle-guided synthesis).
    pub fn distinguishing_input(&mut self) -> Result<Option<Vec<String>>, ServiceError> {
        let k = self.engine.options().top_k;
        self.ensure_learned()?;
        let learned = &self.learned.as_ref().expect("just ensured").learned;
        let found = distinguishing_input(learned, &self.inputs, k);
        Ok(found.map(|i| self.inputs[i].clone()))
    }

    /// The learned program set over the current examples, learning (or
    /// re-learning) if the examples or the database moved since the last
    /// query.
    pub fn learned(&mut self) -> Result<&LearnedPrograms, ServiceError> {
        self.ensure_learned()?;
        Ok(&self.learned.as_ref().expect("just ensured").learned)
    }

    /// Fills (or refreshes) the cached learn. Split from
    /// [`Session::learned`] so queries that also read other session fields
    /// (`status`, `distinguishing_input`) can end the mutable borrow
    /// before touching them — and so an `Err` never disturbs session
    /// state.
    ///
    /// When the database epoch moved under an unchanged example set, the
    /// cached learn (and its compiled form) is kept — not re-learned, not
    /// re-compiled — if the mutation span provably didn't affect it
    /// ([`LearnedPrograms::survives`]): the span is row-level, and no
    /// mutated table or touched value intersects what the learn read. A
    /// row inserted into one background table therefore leaves every
    /// session whose programs read other tables fully warm; a table
    /// *added* (structural — it changes the default lookup depth) still
    /// invalidates everyone.
    fn ensure_learned(&mut self) -> Result<(), ServiceError> {
        let synthesizer = match self.budget {
            Some(budget) => self.engine.synthesizer_with_budget(budget),
            None => self.engine.synthesizer(),
        };
        let db = synthesizer.db_arc();
        let db_epoch = db.epoch();
        let hash = examples_hash(&self.examples);
        if let Some(cached) = &mut self.learned {
            if cached.examples_hash == hash {
                if cached.db_epoch == db_epoch {
                    return Ok(());
                }
                let survives = db
                    .delta_since(cached.db_epoch)
                    .is_some_and(|delta| cached.learned.survives(&delta));
                if survives {
                    // Re-bind to the new epoch: the programs' own database
                    // snapshot only probes unmutated tables, so every
                    // observable stays bit-identical.
                    cached.db_epoch = db_epoch;
                    return Ok(());
                }
            }
        }
        let mut result = synthesizer
            .learn(&self.examples)
            .map_err(ServiceError::from);
        if let Some(budget) = self.budget {
            result = with_deadline_error(result, budget);
        }
        let learned = result?;
        self.learned = Some(CachedLearn {
            db_epoch,
            examples_hash: hash,
            learned,
            compiled_top: None,
        });
        Ok(())
    }

    /// The compiled top-ranked program, lowering it on first use and
    /// serving it from the learn cache afterwards (invalidated with it
    /// when the examples or the database move).
    pub fn compiled_top(&mut self) -> Result<Arc<CompiledProgram>, ServiceError> {
        self.ensure_learned()?;
        let cached = self.learned.as_mut().expect("just ensured");
        if cached.compiled_top.is_none() {
            let top = cached
                .learned
                .top()
                .ok_or(ServiceError::Synthesis(SynthesisError::NoConsistentProgram))?;
            cached.compiled_top = Some(Arc::new(top.compile()));
        }
        Ok(Arc::clone(
            cached.compiled_top.as_ref().expect("just filled"),
        ))
    }

    /// The top-ranked program.
    pub fn top(&mut self) -> Result<Program, ServiceError> {
        self.learned()?
            .top()
            .ok_or(ServiceError::Synthesis(SynthesisError::NoConsistentProgram))
    }

    /// The engine-configured number of top-ranked programs, ascending
    /// cost.
    pub fn top_k(&mut self) -> Result<Vec<Program>, ServiceError> {
        Ok(self.learned()?.top_ranked())
    }

    /// Up to `k` top-ranked programs, ascending cost.
    pub fn top_n(&mut self, k: usize) -> Result<Vec<Program>, ServiceError> {
        Ok(self.learned()?.top_k(k))
    }

    /// Runs the top-ranked program on a fresh input row — through the
    /// cached compiled form, so repeated calls stop re-ranking and
    /// re-interpreting (bit-identical to `self.top()?.run(inputs)`).
    pub fn run(&mut self, inputs: &[&str]) -> Result<Option<String>, ServiceError> {
        Ok(self.compiled_top()?.run_row(inputs))
    }

    /// Applies the top-ranked program to a whole input column, fanning row
    /// ranges across the engine pool (deterministic row order at every
    /// width). The compiled program is cached with the learn, so replaying
    /// columns — or mixing `run` and `run_column` — compiles once.
    pub fn run_column(
        &mut self,
        rows: &[Vec<String>],
    ) -> Result<Vec<Option<String>>, ServiceError> {
        let compiled = self.compiled_top()?;
        Ok(compiled.run_column(rows, self.engine.pool()))
    }

    /// An English description of the top-ranked program (§3.2's
    /// paraphrasing, so the user can sanity-check the tool's guess).
    pub fn paraphrase(&mut self) -> Result<String, ServiceError> {
        Ok(self.top()?.paraphrase())
    }

    /// Exact number of consistent programs.
    pub fn count(&mut self) -> Result<BigUint, ServiceError> {
        Ok(self.learned()?.count())
    }

    /// Data-structure size in terminal symbols.
    pub fn size(&mut self) -> Result<usize, ServiceError> {
        Ok(self.learned()?.size())
    }

    /// Drives the conversation against a ground-truth oracle: starting
    /// from the truth's first row, while the top-ranked program mislabels
    /// some row, that row becomes the next example — the §3.2 loop with
    /// the simulated user of the paper's §7 evaluation. Stops after
    /// `max_examples` examples. All learning happens through the session
    /// (no caller-side re-learn loop).
    pub fn converge_with(
        &mut self,
        truth: &[Example],
        max_examples: usize,
    ) -> Result<SessionConvergence, ServiceError> {
        let first = truth
            .first()
            .ok_or(ServiceError::Synthesis(SynthesisError::NoExamples))?;
        if self.examples.is_empty() {
            self.add_example(first.clone());
        }
        loop {
            let top = self.top()?;
            let failing = truth.iter().find(|row| {
                let refs: Vec<&str> = row.inputs.iter().map(String::as_str).collect();
                top.run(&refs).as_deref() != Some(row.output.as_str())
            });
            match failing {
                None => {
                    return Ok(SessionConvergence {
                        examples_used: self.examples.len(),
                        converged: true,
                    })
                }
                Some(row) => {
                    if self.examples.len() >= max_examples {
                        return Ok(SessionConvergence {
                            examples_used: self.examples.len(),
                            converged: false,
                        });
                    }
                    self.add_example(row.clone());
                }
            }
        }
    }
}
