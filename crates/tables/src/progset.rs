//! Insertion-ordered hashed set for generalized program lists.
//!
//! `Progs[η]` needs two things at once: stable enumeration order (counting,
//! ranking and display all iterate it) and duplicate-free insertion (the
//! reachability loop re-derives the same generalized `Select` whenever a row
//! is re-matched in a later step). The seed used `Vec::contains` — a linear
//! deep-compare per insert that dominated `GenerateStr_t` on wide
//! structures. A `ProgSet` keeps the stable `Vec` and adds a hash index
//! (hash → indices into the vec), so an insert is one hash of the new item
//! plus equality checks only against hash-colliding entries.

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hash};

use crate::intern::IntHasher;

/// An insertion-ordered set with O(1) expected-time membership.
#[derive(Debug, Clone)]
pub struct ProgSet<T> {
    items: Vec<T>,
    index: HashMap<u64, Vec<u32>, BuildHasherDefault<IntHasher>>,
}

impl<T> Default for ProgSet<T> {
    fn default() -> Self {
        ProgSet {
            items: Vec::new(),
            index: HashMap::default(),
        }
    }
}

impl<T: Hash + Eq> ProgSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        ProgSet::default()
    }

    /// Inserts `item` unless an equal one is present; returns whether it was
    /// added. Insertion order is preserved for iteration.
    pub fn insert(&mut self, item: T) -> bool {
        let h = self.index.hasher().hash_one(&item);
        let bucket = self.index.entry(h).or_default();
        if bucket.iter().any(|&i| self.items[i as usize] == item) {
            return false;
        }
        bucket.push(self.items.len() as u32);
        self.items.push(item);
        true
    }

    /// Membership test without inserting.
    pub fn contains(&self, item: &T) -> bool {
        let h = self.index.hasher().hash_one(item);
        self.index
            .get(&h)
            .is_some_and(|b| b.iter().any(|&i| &self.items[i as usize] == item))
    }

    /// The items in insertion order.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Iterates in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff no items are present.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<T> std::ops::Index<usize> for ProgSet<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.items[i]
    }
}

impl<'a, T> IntoIterator for &'a ProgSet<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl<T> IntoIterator for ProgSet<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<T: Hash + Eq> FromIterator<T> for ProgSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut set = ProgSet::new();
        for item in iter {
            set.insert(item);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedupes_and_keeps_order() {
        let mut s: ProgSet<String> = ProgSet::new();
        assert!(s.insert("b".into()));
        assert!(s.insert("a".into()));
        assert!(!s.insert("b".into()));
        assert!(s.insert("c".into()));
        assert_eq!(s.as_slice(), &["b", "a", "c"]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(&"a".to_string()));
        assert!(!s.contains(&"z".to_string()));
    }

    #[test]
    fn from_iter_round_trips() {
        let s: ProgSet<u32> = [3, 1, 3, 2, 1].into_iter().collect();
        assert_eq!(s.as_slice(), &[3, 1, 2]);
        let back: Vec<u32> = s.into_iter().collect();
        assert_eq!(back, vec![3, 1, 2]);
    }

    #[test]
    fn index_and_iter_agree() {
        let s: ProgSet<u32> = [9, 7].into_iter().collect();
        assert_eq!(s[0], 9);
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![9, 7]);
        assert!(!s.is_empty());
    }
}
