//! Ranking of `Lt` expressions (§4.4).
//!
//! The paper's partial order prefers: smaller depth (fewer nested `Select`
//! chains); distinct tables over self-joins; conditions with fewer
//! predicates; and predicates that compare against other table entries or
//! input variables rather than constant strings. The weights below encode
//! those preferences as additive costs, and extraction is a depth-bounded
//! memoized DP over the (possibly cyclic) node graph.

use std::collections::{BTreeSet, HashMap};

use sst_tables::TableId;

use crate::dstruct::{GenLookup, LookupDStruct, NodeId};
use crate::language::{LookupExpr, PredRhs, Predicate};

/// Tunable weights for `Lt` ranking; lower cost = preferred.
#[derive(Debug, Clone)]
pub struct LtRankWeights {
    /// Cost of referencing an input variable.
    pub var: u64,
    /// Cost per `Select` constructor (penalizes depth).
    pub select: u64,
    /// Cost per predicate (prefers narrower candidate keys).
    pub pred: u64,
    /// Extra cost for a constant predicate.
    pub pred_const: u64,
    /// Extra cost for a node (expression) predicate.
    pub pred_expr: u64,
    /// Penalty when a nested `Select` reuses an ancestor's table
    /// (self-join).
    pub self_join: u64,
}

impl Default for LtRankWeights {
    fn default() -> Self {
        LtRankWeights {
            var: 0,
            select: 10,
            pred: 2,
            pred_const: 8,
            pred_expr: 1,
            self_join: 12,
        }
    }
}

/// A ranked concrete expression extracted from a [`LookupDStruct`].
#[derive(Debug, Clone)]
pub struct RankedLookup {
    /// Total cost (lower is better).
    pub cost: u64,
    /// The extracted expression.
    pub expr: LookupExpr,
    /// Tables used anywhere in the expression.
    pub tables: BTreeSet<TableId>,
}

impl LtRankWeights {
    /// Extracts the best expression at the structure's target with
    /// `Select`-depth ≤ `depth`.
    pub fn best(&self, d: &LookupDStruct, depth: usize) -> Option<RankedLookup> {
        let target = d.target?;
        let mut memo = HashMap::new();
        self.best_at(d, target, depth, &mut memo)
    }

    /// Extracts the best expression at a node (memoized on `(node, depth)`).
    pub fn best_at(
        &self,
        d: &LookupDStruct,
        node: NodeId,
        depth: usize,
        memo: &mut HashMap<(u32, usize), Option<RankedLookup>>,
    ) -> Option<RankedLookup> {
        if let Some(hit) = memo.get(&(node.0, depth)) {
            return hit.clone();
        }
        // Seed with None to terminate cycles: a recursive reference at the
        // same depth budget cannot improve (depth strictly decreases below,
        // so this only guards accidental same-key re-entry).
        memo.insert((node.0, depth), None);
        let mut best: Option<RankedLookup> = None;
        for prog in &d.node(node).progs {
            let candidate = match prog {
                GenLookup::Var(v) => Some(RankedLookup {
                    cost: self.var,
                    expr: LookupExpr::Var(*v),
                    tables: BTreeSet::new(),
                }),
                GenLookup::Select { col, table, conds } => {
                    if depth == 0 {
                        None
                    } else {
                        let mut best_sel: Option<RankedLookup> = None;
                        for cond in conds.iter() {
                            let mut cost = self.select + self.pred * cond.preds.len() as u64;
                            let mut tables: BTreeSet<TableId> = BTreeSet::new();
                            tables.insert(*table);
                            let mut preds: Vec<Predicate> = Vec::with_capacity(cond.preds.len());
                            let mut viable = true;
                            for pred in &cond.preds {
                                // Prefer the expression alternative when its
                                // total cost beats the constant's.
                                let expr_opt = pred.node.and_then(|n| {
                                    self.best_at(d, n, depth - 1, memo).map(|sub| {
                                        let join_pen = if sub.tables.contains(table) {
                                            self.self_join
                                        } else {
                                            0
                                        };
                                        (self.pred_expr + sub.cost + join_pen, sub)
                                    })
                                });
                                let const_opt = pred
                                    .constant
                                    .map(|s| (self.pred_const, s.as_str().to_string()));
                                match (expr_opt, const_opt) {
                                    (Some((ec, sub)), Some((cc, s))) => {
                                        if ec <= cc {
                                            cost += ec;
                                            tables.extend(sub.tables.iter().copied());
                                            preds.push(Predicate {
                                                col: pred.col,
                                                rhs: PredRhs::Expr(Box::new(sub.expr)),
                                            });
                                        } else {
                                            cost += cc;
                                            preds.push(Predicate {
                                                col: pred.col,
                                                rhs: PredRhs::Const(s),
                                            });
                                        }
                                    }
                                    (Some((ec, sub)), None) => {
                                        cost += ec;
                                        tables.extend(sub.tables.iter().copied());
                                        preds.push(Predicate {
                                            col: pred.col,
                                            rhs: PredRhs::Expr(Box::new(sub.expr)),
                                        });
                                    }
                                    (None, Some((cc, s))) => {
                                        cost += cc;
                                        preds.push(Predicate {
                                            col: pred.col,
                                            rhs: PredRhs::Const(s),
                                        });
                                    }
                                    (None, None) => {
                                        viable = false;
                                        break;
                                    }
                                }
                            }
                            if !viable || preds.is_empty() {
                                continue;
                            }
                            let candidate = RankedLookup {
                                cost,
                                expr: LookupExpr::Select {
                                    col: *col,
                                    table: *table,
                                    cond: preds,
                                },
                                tables,
                            };
                            if best_sel.as_ref().is_none_or(|b| candidate.cost < b.cost) {
                                best_sel = Some(candidate);
                            }
                        }
                        best_sel
                    }
                }
            };
            if let Some(c) = candidate {
                if best.as_ref().is_none_or(|b| c.cost < b.cost) {
                    best = Some(c);
                }
            }
        }
        memo.insert((node.0, depth), best.clone());
        best
    }

    /// Extracts the `n` best expressions at the target, in ascending cost.
    ///
    /// A simple beam: enumerate bounded candidates and sort by [`Self::cost_of`].
    pub fn top_n(&self, d: &LookupDStruct, depth: usize, n: usize) -> Vec<RankedLookup> {
        let Some(target) = d.target else {
            return Vec::new();
        };
        let mut scored: Vec<RankedLookup> = d
            .enumerate_at(target, depth, n.saturating_mul(64).max(256))
            .into_iter()
            .map(|expr| {
                let (cost, tables) = self.cost_of(&expr);
                RankedLookup { cost, expr, tables }
            })
            .collect();
        scored.sort_by_key(|r| r.cost);
        scored.truncate(n);
        scored
    }

    /// Cost of a concrete expression under these weights.
    pub fn cost_of(&self, expr: &LookupExpr) -> (u64, BTreeSet<TableId>) {
        match expr {
            LookupExpr::Var(_) => (self.var, BTreeSet::new()),
            LookupExpr::Select { table, cond, .. } => {
                let mut cost = self.select + self.pred * cond.len() as u64;
                let mut tables = BTreeSet::new();
                tables.insert(*table);
                for p in cond {
                    match &p.rhs {
                        PredRhs::Const(_) => cost += self.pred_const,
                        PredRhs::Expr(e) => {
                            let (sub_cost, sub_tables) = self.cost_of(e);
                            cost += self.pred_expr + sub_cost;
                            if sub_tables.contains(table) {
                                cost += self.self_join;
                            }
                            tables.extend(sub_tables);
                        }
                    }
                }
                (cost, tables)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_str_t, LtOptions};
    use sst_tables::{Database, Table};

    fn comp_db() -> Database {
        Database::from_tables(vec![Table::new(
            "Comp",
            vec!["Id", "Name"],
            vec![
                vec!["c1", "Microsoft"],
                vec!["c2", "Google"],
                vec!["c3", "Apple"],
            ],
        )
        .unwrap()])
        .unwrap()
    }

    #[test]
    fn best_prefers_var_predicate_over_const() {
        let db = comp_db();
        let d = generate_str_t(&db, &["c2"], "Google", &LtOptions::default());
        let best = LtRankWeights::default().best(&d, 2).unwrap();
        assert_eq!(best.expr.display(&db), "Select(Name, Comp, Id = v1)");
    }

    #[test]
    fn best_respects_depth_budget() {
        let db = comp_db();
        let d = generate_str_t(&db, &["c2"], "Google", &LtOptions::default());
        let w = LtRankWeights::default();
        assert!(w.best(&d, 0).is_none());
        assert!(w.best(&d, 1).is_some());
    }

    #[test]
    fn identity_prefers_bare_variable() {
        let db = comp_db();
        let d = generate_str_t(&db, &["c2"], "c2", &LtOptions::default());
        let best = LtRankWeights::default().best(&d, 2).unwrap();
        assert_eq!(best.expr, LookupExpr::Var(0));
        assert_eq!(best.cost, 0);
    }

    #[test]
    fn top_n_is_sorted_and_distinct_costs_ascend() {
        let db = comp_db();
        let d = generate_str_t(&db, &["c2"], "Google", &LtOptions::default());
        let w = LtRankWeights::default();
        let top = w.top_n(&d, 2, 5);
        assert!(!top.is_empty());
        for pair in top.windows(2) {
            assert!(pair[0].cost <= pair[1].cost);
        }
        assert_eq!(top[0].expr.display(&db), "Select(Name, Comp, Id = v1)");
    }

    #[test]
    fn cost_of_penalizes_self_join() {
        let w = LtRankWeights::default();
        let inner = LookupExpr::Select {
            col: 0,
            table: 7,
            cond: vec![Predicate {
                col: 1,
                rhs: PredRhs::Expr(Box::new(LookupExpr::Var(0))),
            }],
        };
        let same_table = LookupExpr::Select {
            col: 1,
            table: 7,
            cond: vec![Predicate {
                col: 0,
                rhs: PredRhs::Expr(Box::new(inner.clone())),
            }],
        };
        let other_table = LookupExpr::Select {
            col: 1,
            table: 8,
            cond: vec![Predicate {
                col: 0,
                rhs: PredRhs::Expr(Box::new(inner)),
            }],
        };
        assert!(w.cost_of(&same_table).0 > w.cost_of(&other_table).0);
    }
}
