//! The lookup transformation language `Lt` and its inductive synthesis
//! algorithm (§4 of Singh & Gulwani, VLDB 2012).
//!
//! `Lt` maps a tuple of input strings to an output string using (possibly
//! nested) `Select(C, T, b)` lookups over a database of relational tables,
//! where `b` conjoins equality predicates over a candidate key of `T`.
//! The synthesis algorithm learns *all* expressions consistent with a set
//! of input-output examples:
//!
//! * [`generate_str_t`] builds the succinct data structure
//!   [`LookupDStruct`] for one example by forward reachability (Fig. 5a);
//! * [`intersect_dt`] intersects structures across examples (Fig. 5b);
//! * [`LtRankWeights`] extracts the top-ranked expression (§4.4).
//!
//! # Example
//!
//! ```
//! use sst_lookup::LookupLearner;
//! use sst_tables::{Database, Table};
//!
//! let db = Database::from_tables(vec![Table::new(
//!     "Comp",
//!     vec!["Id", "Name"],
//!     vec![vec!["c1", "Microsoft"], vec!["c2", "Google"]],
//! )
//! .unwrap()])
//! .unwrap();
//!
//! let learner = LookupLearner::new(db);
//! let learned = learner
//!     .learn(&[(vec!["c1".to_string()], "Microsoft".to_string())])
//!     .expect("consistent lookups exist");
//! let top = learned.top().unwrap();
//! assert_eq!(learned.run(&top, &["c2"]).as_deref(), Some("Google"));
//! ```

mod dstruct;
mod eval;
mod generate;
mod intersect;
mod language;
mod rank;
pub mod reach;

pub use dstruct::{GenCond, GenLookup, GenPred, LookupDStruct, NodeData, NodeId};
pub use eval::eval_lookup;
pub use generate::{generate_str_t, LtOptions};
pub use intersect::intersect_dt;
pub use language::{LookupExpr, PredRhs, Predicate, VarId};
pub use rank::{LtRankWeights, RankedLookup};
pub use reach::{reach, Activation, ReachPolicy, ReachState};
pub use sst_tables::ProgSet;

use sst_counting::BigUint;
use sst_tables::Database;

/// End-to-end synthesizer for the pure lookup language `Lt`.
///
/// This is the §4 algorithm by itself: it solves the paper's 12 pure-lookup
/// benchmarks and serves as the baseline that *fails* on the 38 tasks
/// requiring syntactic manipulation (those need `sst-core`'s `Lu`).
#[derive(Debug, Clone)]
pub struct LookupLearner {
    db: Database,
    /// Reachability options (depth bound `k`).
    pub options: LtOptions,
    /// Ranking weights.
    pub weights: LtRankWeights,
}

/// The result of learning: all consistent `Lt` programs.
#[derive(Debug, Clone)]
pub struct LearnedLookup {
    dstruct: LookupDStruct,
    db: Database,
    depth: usize,
    weights: LtRankWeights,
}

impl LookupLearner {
    /// Creates a learner over a database with default options.
    pub fn new(db: Database) -> Self {
        LookupLearner {
            db,
            options: LtOptions::default(),
            weights: LtRankWeights::default(),
        }
    }

    /// The database the learner runs against.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Learns the set of all `Lt` programs consistent with the examples;
    /// `None` when no program exists.
    pub fn learn(&self, examples: &[(Vec<String>, String)]) -> Option<LearnedLookup> {
        let mut iter = examples.iter();
        let (inputs, output) = iter.next()?;
        let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        let mut d = generate_str_t(&self.db, &refs, output, &self.options);
        if !d.has_programs() {
            return None;
        }
        for (inputs, output) in iter {
            let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
            let next = generate_str_t(&self.db, &refs, output, &self.options);
            d = intersect_dt(&d, &next);
            if !d.has_programs() {
                return None;
            }
        }
        Some(LearnedLookup {
            dstruct: d,
            db: self.db.clone(),
            depth: self.options.depth_for(&self.db),
            weights: self.weights.clone(),
        })
    }
}

impl LearnedLookup {
    /// The underlying data structure.
    pub fn dstruct(&self) -> &LookupDStruct {
        &self.dstruct
    }

    /// Number of consistent programs of depth ≤ k (exact).
    pub fn count(&self) -> BigUint {
        self.dstruct.count(self.depth)
    }

    /// Data-structure size in terminal symbols.
    pub fn size(&self) -> usize {
        self.dstruct.size()
    }

    /// The top-ranked program.
    pub fn top(&self) -> Option<LookupExpr> {
        self.weights.best(&self.dstruct, self.depth).map(|r| r.expr)
    }

    /// The `n` top-ranked programs, ascending cost.
    pub fn top_n(&self, n: usize) -> Vec<LookupExpr> {
        self.weights
            .top_n(&self.dstruct, self.depth, n)
            .into_iter()
            .map(|r| r.expr)
            .collect()
    }

    /// Runs a program on a fresh input row.
    pub fn run(&self, program: &LookupExpr, inputs: &[&str]) -> Option<String> {
        eval_lookup(program, &self.db, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_tables::Table;

    fn ex(inputs: &[&str], output: &str) -> (Vec<String>, String) {
        (
            inputs.iter().map(|s| s.to_string()).collect(),
            output.to_string(),
        )
    }

    fn join_db() -> Database {
        Database::from_tables(vec![
            Table::new(
                "CustData",
                vec!["Name", "Addr", "St"],
                vec![
                    vec!["Sean Riley", "432", "15th"],
                    vec!["Peter Shaw", "24", "18th"],
                    vec!["Mike Henry", "432", "18th"],
                    vec!["Gary Lamb", "104", "12th"],
                ],
            )
            .unwrap(),
            Table::new(
                "Sale",
                vec!["Addr", "St", "Date", "Price"],
                vec![
                    vec!["24", "18th", "5/21", "110"],
                    vec!["104", "12th", "5/23", "225"],
                    vec!["432", "18th", "5/20", "2015"],
                    vec!["432", "15th", "5/24", "495"],
                ],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn example2_learned_from_two_examples() {
        let learner = LookupLearner::new(join_db());
        let learned = learner
            .learn(&[ex(&["Peter Shaw"], "110"), ex(&["Gary Lamb"], "225")])
            .unwrap();
        let top = learned.top().unwrap();
        assert_eq!(learned.run(&top, &["Mike Henry"]).as_deref(), Some("2015"));
        assert_eq!(learned.run(&top, &["Sean Riley"]).as_deref(), Some("495"));
    }

    #[test]
    fn learning_fails_when_output_not_reachable() {
        let learner = LookupLearner::new(join_db());
        assert!(learner.learn(&[ex(&["Peter Shaw"], "999")]).is_none());
    }

    #[test]
    fn count_and_size_are_positive() {
        let learner = LookupLearner::new(join_db());
        let learned = learner.learn(&[ex(&["Peter Shaw"], "110")]).unwrap();
        assert!(learned.count() > BigUint::zero());
        assert!(learned.size() > 0);
    }

    #[test]
    fn top_n_programs_all_consistent() {
        let learner = LookupLearner::new(join_db());
        let learned = learner.learn(&[ex(&["Peter Shaw"], "110")]).unwrap();
        let top = learned.top_n(5);
        assert!(!top.is_empty());
        for p in &top {
            assert_eq!(learned.run(p, &["Peter Shaw"]).as_deref(), Some("110"));
        }
    }

    #[test]
    fn inconsistent_examples_fail() {
        let learner = LookupLearner::new(join_db());
        assert!(learner
            .learn(&[ex(&["Peter Shaw"], "110"), ex(&["Peter Shaw"], "225")])
            .is_none());
    }
}
