//! The data structure `Du` for sets of `Lu` expressions (§5.2).
//!
//! `Du` glues the two succinct representations together:
//!
//! * a set of *lookup nodes* (`η̃`, shared with the input variables), each
//!   carrying generalized lookup programs whose predicate right-hand sides
//!   are **nested DAGs** over the known strings (`p̃_t := C = ẽ_s`), and
//! * a *top-level DAG* over the output string whose edge atoms reference
//!   lookup nodes (`f̃_s := ConstStr(s) | ẽ_t | SubStr(ẽ_t, p̃_1, p̃_2)`).
//!
//! Following the paper, a generalized predicate's constant alternative
//! (`C = s` of `Lt`) is *subsumed* by the nested DAG — the DAG always
//! contains the all-constant program — so predicates store only the DAG.
//! Counting therefore never double-counts, and constant conflicts die in
//! DAG intersection exactly as Fig. 5(b) prescribes.
//!
//! Like `Dt`, the node graph can be cyclic; all consumers are depth-bounded
//! DPs or fixpoints (see [`SemDStruct::prune`]).

use std::sync::Arc;

use sst_counting::BigUint;
use sst_lookup::NodeId;
use sst_syntactic::{AtomSet, Dag};
use sst_tables::{ColId, IntMap, Symbol, TableId};

use crate::language::VarId;

/// Generalized predicate: the key column plus the DAG of all syntactic
/// expressions (over known strings) producing the key value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GenPredU {
    /// Constrained column.
    pub col: ColId,
    /// All `e_s` expressions producing the value of `col` in the selected
    /// row; sources are lookup-node handles. `Arc`-shared: repeated key
    /// values within a reachability step (and `DagCache` hits across
    /// steps) reference one DAG allocation, and intersection's nested-DAG
    /// memo keys on exactly this pointer identity.
    pub dag: Arc<Dag<NodeId>>,
}

/// Generalized condition for one candidate key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GenCondU {
    /// Candidate-key index within the table's key list (alignment for
    /// intersection).
    pub key: usize,
    /// One predicate per key column, in key order.
    pub preds: Vec<GenPredU>,
}

/// A generalized lookup program of a node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GenLookupU {
    /// The input variable `v_i`.
    Var(VarId),
    /// Generalized `Select` with one condition per candidate key.
    Select {
        /// Projected column.
        col: ColId,
        /// Table identifier.
        table: TableId,
        /// Conditions (at least one). Shared: one allocation per activated
        /// row, referenced by every attached column.
        conds: Arc<Vec<GenCondU>>,
    },
}

/// One lookup node: a reachable string and its generalized programs.
#[derive(Debug, Clone, Default)]
pub struct SemNode {
    /// The node's interned value under each example's input state.
    pub vals: Vec<Symbol>,
    /// Generalized lookup programs (`Progs[η]`). Deliberately a `Vec`, not
    /// a hashed set: `Intersect_u` has always pushed every intersected
    /// program without deduplication, and the counting metrics are pinned
    /// to that behavior — generation deduplicates at insert through its own
    /// hash index instead.
    pub progs: Vec<GenLookupU>,
}

/// The `Du` data structure: lookup nodes plus the top-level output DAG.
#[derive(Debug, Clone, Default)]
pub struct SemDStruct {
    /// Lookup nodes (`η̃`), including one per distinct input value.
    pub nodes: Vec<SemNode>,
    /// DAG of all programs generating the output; `None` when the
    /// intersection across examples became empty. `Arc`-shared so a
    /// `DagCache` hit and the structure it produced alias one allocation;
    /// mutation (pruning) goes through copy-on-write.
    pub top: Option<Arc<Dag<NodeId>>>,
}

impl SemDStruct {
    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &SemNode {
        &self.nodes[id.0 as usize]
    }

    /// Number of lookup nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True iff at least one consistent program is represented.
    pub fn has_programs(&self) -> bool {
        self.top.as_ref().is_some_and(|top| top.is_nonempty())
    }

    /// What this structure read from the database: the tables its
    /// `Select` programs touch and every node value (the σ ∪ η̃ strings
    /// whose substring relations drove reachability), both sorted and
    /// deduplicated. A mutation that writes none of the tables and touches
    /// no value substring-related to any of the strings provably leaves a
    /// regeneration bit-identical — the revalidation criterion behind
    /// `DagCache::validate_db` and `LearnedPrograms::survives`.
    pub fn reads(&self) -> (Vec<TableId>, Vec<Symbol>) {
        let mut tables: Vec<TableId> = Vec::new();
        let mut vals: Vec<Symbol> = Vec::new();
        for node in &self.nodes {
            vals.extend(node.vals.iter().copied());
            for prog in &node.progs {
                if let GenLookupU::Select { table, .. } = prog {
                    tables.push(*table);
                }
            }
        }
        tables.sort_unstable();
        tables.dedup();
        vals.sort_unstable();
        vals.dedup();
        (tables, vals)
    }

    /// Exact number of programs with lookup depth ≤ `depth` (Figure 11(a)).
    pub fn count(&self, depth: usize) -> BigUint {
        let Some(top) = &self.top else {
            return BigUint::zero();
        };
        let mut memo: IntMap<(u32, usize), BigUint> = IntMap::default();
        memo.reserve(self.nodes.len().saturating_mul(depth + 1));
        top.count_programs(&mut |n: &NodeId| self.count_node(*n, depth, &mut memo))
    }

    /// Number of depth-bounded lookup programs at one node.
    fn count_node(
        &self,
        node: NodeId,
        depth: usize,
        memo: &mut IntMap<(u32, usize), BigUint>,
    ) -> BigUint {
        if let Some(c) = memo.get(&(node.0, depth)) {
            return c.clone();
        }
        // Seed to cut accidental re-entry on the same key.
        memo.insert((node.0, depth), BigUint::zero());
        let mut total = BigUint::zero();
        for prog in &self.node(node).progs {
            match prog {
                GenLookupU::Var(_) => total += 1u64,
                GenLookupU::Select { conds, .. } => {
                    if depth == 0 {
                        continue;
                    }
                    for cond in conds.iter() {
                        let mut product = BigUint::one();
                        for pred in &cond.preds {
                            let c = pred.dag.count_programs(&mut |n: &NodeId| {
                                self.count_node(*n, depth - 1, memo)
                            });
                            product = product * c;
                            if product.is_zero() {
                                break;
                            }
                        }
                        total += &product;
                    }
                }
            }
        }
        memo.insert((node.0, depth), total.clone());
        total
    }

    /// Size in terminal symbols (Figure 11(b)): node programs plus the
    /// top-level DAG; every node reference, token, integer, column, table
    /// and constant counts one.
    pub fn size(&self) -> usize {
        let node_sizes: usize = self
            .nodes
            .iter()
            .flat_map(|n| n.progs.iter())
            .map(|p| match p {
                GenLookupU::Var(_) => 1,
                GenLookupU::Select { conds, .. } => {
                    2 + conds
                        .iter()
                        .flat_map(|c| c.preds.iter())
                        .map(|pred| 1 + pred.dag.size(&mut |_| 1))
                        .sum::<usize>()
                }
            })
            .sum();
        let top_size = self.top.as_ref().map(|d| d.size(&mut |_| 1)).unwrap_or(0);
        node_sizes + top_size
    }

    /// Productivity pruning + garbage collection.
    ///
    /// A node is *productive* when some finite lookup program derives from
    /// it: a variable, or a `Select` with a condition whose every predicate
    /// DAG has a source→target path using only constants and productive
    /// nodes. After the fixpoint, dead program options and dead DAG atoms
    /// are removed, and nodes unreferenced by the target DAG are dropped.
    /// Returns `false` when no program survives at the top.
    pub fn prune(&mut self) -> bool {
        let n = self.nodes.len();
        let mut productive = vec![false; n];
        loop {
            let mut changed = false;
            for i in 0..n {
                if productive[i] {
                    continue;
                }
                let ok = self.nodes[i].progs.iter().any(|p| match p {
                    GenLookupU::Var(_) => true,
                    GenLookupU::Select { conds, .. } => conds.iter().any(|c| {
                        !c.preds.is_empty()
                            && c.preds
                                .iter()
                                .all(|pred| dag_derivable(&pred.dag, &productive))
                    }),
                });
                if ok {
                    productive[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Rewrite node programs: filter DAG atoms, drop dead conditions.
        // Predicate DAGs are `Arc`-shared (repeated key values, memoized
        // intersections), so filtering+pruning is memoized per pointer: one
        // distinct DAG is rewritten once and every referent re-shares the
        // result. Entries pin their key `Arc`, so a freed allocation can
        // never be confused with a later one at the same address.
        let mut dag_memo: PrunedDagMemo = IntMap::default();
        for i in 0..n {
            let progs = std::mem::take(&mut self.nodes[i].progs);
            self.nodes[i].progs = progs
                .into_iter()
                .filter_map(|p| match p {
                    GenLookupU::Var(v) => Some(GenLookupU::Var(v)),
                    GenLookupU::Select { col, table, conds } => {
                        let conds = Arc::try_unwrap(conds).unwrap_or_else(|a| (*a).clone());
                        let conds: Vec<GenCondU> = conds
                            .into_iter()
                            .filter_map(|c| {
                                let original = c.preds.len();
                                let preds: Vec<GenPredU> = c
                                    .preds
                                    .into_iter()
                                    .filter_map(|pred| {
                                        let dag =
                                            pruned_shared(&mut dag_memo, &pred.dag, &productive)?;
                                        Some(GenPredU { col: pred.col, dag })
                                    })
                                    .collect();
                                // All key columns must survive: a partial
                                // key no longer pins a unique row.
                                (preds.len() == original && original > 0)
                                    .then_some(GenCondU { key: c.key, preds })
                            })
                            .collect();
                        (!conds.is_empty()).then_some(GenLookupU::Select {
                            col,
                            table,
                            conds: Arc::new(conds),
                        })
                    }
                })
                .collect();
        }
        drop(dag_memo);

        // Top DAG: drop atoms referencing unproductive nodes. Copy-on-write
        // keeps any cache-shared original intact.
        let Some(top) = &mut self.top else {
            return false;
        };
        let top_mut = Arc::make_mut(top);
        filter_dag(top_mut, &productive);
        if !top_mut.prune() {
            self.top = None;
            return false;
        }

        // GC: keep nodes referenced (transitively) from the top DAG.
        let mut keep = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for atoms in self.top.as_ref().unwrap().edges.values() {
            for atom in atoms {
                collect_atom_nodes(atom, &mut |id| {
                    if !keep[id.0 as usize] {
                        keep[id.0 as usize] = true;
                        stack.push(id.0 as usize);
                    }
                });
            }
        }
        while let Some(i) = stack.pop() {
            for p in &self.nodes[i].progs {
                if let GenLookupU::Select { conds, .. } = p {
                    for pred in conds.iter().flat_map(|c| c.preds.iter()) {
                        for atoms in pred.dag.edges.values() {
                            for atom in atoms {
                                collect_atom_nodes(atom, &mut |id| {
                                    if !keep[id.0 as usize] {
                                        keep[id.0 as usize] = true;
                                        stack.push(id.0 as usize);
                                    }
                                });
                            }
                        }
                    }
                }
            }
        }
        let mut remap = vec![u32::MAX; n];
        let mut kept: Vec<SemNode> = Vec::new();
        for i in 0..n {
            if keep[i] {
                remap[i] = kept.len() as u32;
                kept.push(std::mem::take(&mut self.nodes[i]));
            }
        }
        let mut remap_memo: RemappedDagMemo = IntMap::default();
        for node in &mut kept {
            for p in &mut node.progs {
                if let GenLookupU::Select { conds, .. } = p {
                    // Clone-on-write: shared condition lists get one copy;
                    // shared DAGs are remapped once per pointer and
                    // re-shared.
                    for pred in Arc::make_mut(conds)
                        .iter_mut()
                        .flat_map(|c| c.preds.iter_mut())
                    {
                        pred.dag = remapped_shared(&mut remap_memo, &pred.dag, &remap);
                    }
                }
            }
        }
        remap_dag(Arc::make_mut(self.top.as_mut().unwrap()), &remap);
        self.nodes = kept;
        true
    }
}

/// Memo for [`pruned_shared`]: `Arc` address → (pinned key, rewritten DAG).
type PrunedDagMemo = IntMap<usize, (Arc<Dag<NodeId>>, Option<Arc<Dag<NodeId>>>)>;

/// Filters and prunes one (possibly shared) predicate DAG, once per
/// distinct allocation. `None` when no program survives.
fn pruned_shared(
    memo: &mut PrunedDagMemo,
    dag: &Arc<Dag<NodeId>>,
    productive: &[bool],
) -> Option<Arc<Dag<NodeId>>> {
    let key = Arc::as_ptr(dag) as usize;
    if let Some((_, hit)) = memo.get(&key) {
        return hit.clone();
    }
    let mut rewritten = (**dag).clone();
    filter_dag(&mut rewritten, productive);
    let out = rewritten.prune().then(|| Arc::new(rewritten));
    memo.insert(key, (Arc::clone(dag), out.clone()));
    out
}

/// Memo for [`remapped_shared`]: `Arc` address → (pinned key, remapped DAG).
type RemappedDagMemo = IntMap<usize, (Arc<Dag<NodeId>>, Arc<Dag<NodeId>>)>;

/// Remaps one (possibly shared) predicate DAG's node references, once per
/// distinct allocation.
fn remapped_shared(
    memo: &mut RemappedDagMemo,
    dag: &Arc<Dag<NodeId>>,
    remap: &[u32],
) -> Arc<Dag<NodeId>> {
    let key = Arc::as_ptr(dag) as usize;
    if let Some((_, hit)) = memo.get(&key) {
        return Arc::clone(hit);
    }
    let mut rewritten = (**dag).clone();
    remap_dag(&mut rewritten, remap);
    let out = Arc::new(rewritten);
    memo.insert(key, (Arc::clone(dag), Arc::clone(&out)));
    out
}

/// True iff the DAG has a source→target path whose every edge offers an
/// atom that is a constant or references a productive node.
fn dag_derivable(dag: &Dag<NodeId>, productive: &[bool]) -> bool {
    let mut reach = vec![false; dag.num_nodes as usize];
    reach[dag.target as usize] = true;
    for v in (0..dag.num_nodes).rev() {
        if v == dag.target {
            continue;
        }
        reach[v as usize] = dag.outgoing(v).any(|(&(_, next), atoms)| {
            reach[next as usize]
                && atoms.iter().any(|a| match a {
                    AtomSet::ConstStr(_) => true,
                    AtomSet::Whole(nid) | AtomSet::SubStr { src: nid, .. } => {
                        productive[nid.0 as usize]
                    }
                })
        });
    }
    reach[dag.source as usize]
}

/// Removes atoms referencing unproductive nodes from every edge.
fn filter_dag(dag: &mut Dag<NodeId>, productive: &[bool]) {
    for atoms in dag.edges.values_mut() {
        atoms.retain(|a| match a {
            AtomSet::ConstStr(_) => true,
            AtomSet::Whole(nid) | AtomSet::SubStr { src: nid, .. } => productive[nid.0 as usize],
        });
    }
    dag.edges.retain(|_, atoms| !atoms.is_empty());
}

fn remap_dag(dag: &mut Dag<NodeId>, remap: &[u32]) {
    for atoms in dag.edges.values_mut() {
        for atom in atoms {
            match atom {
                AtomSet::ConstStr(_) => {}
                AtomSet::Whole(nid) | AtomSet::SubStr { src: nid, .. } => {
                    *nid = NodeId(remap[nid.0 as usize]);
                }
            }
        }
    }
}

fn collect_atom_nodes(atom: &AtomSet<NodeId>, visit: &mut impl FnMut(NodeId)) {
    match atom {
        AtomSet::ConstStr(_) => {}
        AtomSet::Whole(nid) | AtomSet::SubStr { src: nid, .. } => visit(*nid),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn const_dag(s: &str) -> Dag<NodeId> {
        let mut edges = BTreeMap::new();
        edges.insert((0u32, 1u32), vec![AtomSet::ConstStr(s.to_string())]);
        Dag {
            num_nodes: 2,
            source: 0,
            target: 1,
            edges,
        }
    }

    fn node_dag(n: u32) -> Dag<NodeId> {
        let mut edges = BTreeMap::new();
        edges.insert((0u32, 1u32), vec![AtomSet::Whole(NodeId(n))]);
        Dag {
            num_nodes: 2,
            source: 0,
            target: 1,
            edges,
        }
    }

    fn select(conds_dags: Vec<Dag<NodeId>>) -> GenLookupU {
        GenLookupU::Select {
            col: 1,
            table: 0,
            conds: Arc::new(vec![GenCondU {
                key: 0,
                preds: conds_dags
                    .into_iter()
                    .map(|dag| GenPredU {
                        col: 0,
                        dag: Arc::new(dag),
                    })
                    .collect(),
            }]),
        }
    }

    /// A two-node structure: node 0 = input var, node 1 = Select keyed by a
    /// dag that can be the constant "c2" or node 0; top outputs node 1.
    fn simple() -> SemDStruct {
        let mut d = SemDStruct::default();
        d.nodes.push(SemNode {
            vals: vec!["c2".into()],
            progs: vec![GenLookupU::Var(0)],
        });
        let mut key_dag = const_dag("c2");
        key_dag
            .edges
            .get_mut(&(0, 1))
            .unwrap()
            .push(AtomSet::Whole(NodeId(0)));
        d.nodes.push(SemNode {
            vals: vec!["Google".into()],
            progs: vec![select(vec![key_dag])],
        });
        d.top = Some(Arc::new(node_dag(1)));
        d
    }

    #[test]
    fn count_depth_bounded() {
        let d = simple();
        // depth 0: Select unavailable -> top has no programs.
        assert_eq!(d.count(0).to_u64(), Some(0));
        // depth 1: Select with key = const "c2" or var node: 2 programs.
        assert_eq!(d.count(1).to_u64(), Some(2));
        assert_eq!(d.count(3).to_u64(), Some(2));
    }

    #[test]
    fn size_includes_nested_dags() {
        let d = simple();
        // Node 0: Var = 1. Node 1: Select = 2 + pred(1 + dag(const 1 + node 1)).
        // Top: Whole = 1.
        assert_eq!(d.size(), 1 + (2 + 1 + 2) + 1);
    }

    #[test]
    fn prune_noop_on_healthy_structure() {
        let mut d = simple();
        assert!(d.prune());
        assert_eq!(d.len(), 2);
        assert_eq!(d.count(1).to_u64(), Some(2));
    }

    #[test]
    fn prune_kills_cyclic_only_nodes() {
        // Node 0's only program selects keyed by node 1; node 1 by node 0.
        let mut d = SemDStruct::default();
        d.nodes.push(SemNode {
            vals: vec!["a".into()],
            progs: vec![select(vec![node_dag(1)])],
        });
        d.nodes.push(SemNode {
            vals: vec!["b".into()],
            progs: vec![select(vec![node_dag(0)])],
        });
        d.top = Some(Arc::new(node_dag(0)));
        assert!(!d.prune());
        assert!(!d.has_programs());
    }

    #[test]
    fn prune_keeps_const_escape_in_cycle() {
        let mut d = SemDStruct::default();
        let mut dag0 = node_dag(1);
        dag0.edges
            .get_mut(&(0, 1))
            .unwrap()
            .push(AtomSet::ConstStr("k".into()));
        d.nodes.push(SemNode {
            vals: vec!["a".into()],
            progs: vec![select(vec![dag0])],
        });
        d.nodes.push(SemNode {
            vals: vec!["b".into()],
            progs: vec![select(vec![node_dag(0)])],
        });
        d.top = Some(Arc::new(node_dag(0)));
        assert!(d.prune());
        assert!(d.count(2).to_u64().unwrap() >= 1);
    }

    #[test]
    fn prune_gc_drops_unreferenced_nodes() {
        let mut d = simple();
        d.nodes.push(SemNode {
            vals: vec!["orphan".into()],
            progs: vec![GenLookupU::Var(7)],
        });
        let before = d.count(1);
        assert!(d.prune());
        assert_eq!(d.len(), 2);
        assert_eq!(d.count(1), before);
    }

    #[test]
    fn prune_without_top_is_false() {
        let mut d = SemDStruct::default();
        d.nodes.push(SemNode {
            vals: vec!["x".into()],
            progs: vec![GenLookupU::Var(0)],
        });
        assert!(!d.prune());
    }

    #[test]
    fn top_const_only_still_has_programs() {
        let mut d = SemDStruct {
            top: Some(Arc::new(const_dag("out"))),
            ..Default::default()
        };
        assert!(d.prune());
        assert_eq!(d.count(0).to_u64(), Some(1));
    }
}
