//! Evaluation of `Ls` expressions.
//!
//! Position evaluation follows §5 of the paper exactly: a constant `k ≥ 0`
//! is the `k`-th position, a negative `k` is position `len + 1 + k`, and
//! `pos(r1, r2, c)` is the `|c|`-th position (from the left if `c > 0`,
//! from the right if `c < 0`) where `r1` matches ending there and `r2`
//! matches starting there. An unmatched position makes the enclosing
//! expression undefined (`None`), mirroring FlashFill's `⊥`.

use crate::language::{AtomicExpr, PosExpr, StringExpr, Var};
use crate::matches::Matcher;
use crate::tokens::{StringRuns, TokenSet};

/// Evaluates a position expression on a subject string; `None` if undefined.
pub fn eval_pos(pos: &PosExpr, subject: &str, set: &TokenSet) -> Option<u32> {
    let runs = StringRuns::compute(subject, set);
    eval_pos_with_runs(pos, &runs, set)
}

/// Evaluates a position expression against precomputed runs.
pub fn eval_pos_with_runs(pos: &PosExpr, runs: &StringRuns, set: &TokenSet) -> Option<u32> {
    let len = runs.len() as i64;
    match pos {
        PosExpr::CPos(k) => {
            let t = if *k >= 0 {
                *k as i64
            } else {
                len + 1 + *k as i64
            };
            (0..=len).contains(&t).then_some(t as u32)
        }
        PosExpr::Pos { r1, r2, c } => {
            if *c == 0 {
                return None;
            }
            let matcher = Matcher::new(runs, set);
            let positions = matcher.match_positions(r1, r2);
            let idx = if *c > 0 {
                (*c as usize).checked_sub(1)?
            } else {
                positions.len().checked_sub(c.unsigned_abs() as usize)?
            };
            positions.get(idx).copied()
        }
    }
}

/// Evaluates an atomic expression; `resolve` maps a source to its string
/// (`None` if the source itself is undefined).
pub fn eval_atom<S>(
    atom: &AtomicExpr<S>,
    resolve: &mut impl FnMut(&S) -> Option<String>,
    set: &TokenSet,
) -> Option<String> {
    match atom {
        AtomicExpr::ConstStr(s) => Some(s.clone()),
        AtomicExpr::Whole(src) => resolve(src),
        AtomicExpr::SubStr { src, p1, p2 } => {
            let subject = resolve(src)?;
            let runs = StringRuns::compute(&subject, set);
            let a = eval_pos_with_runs(p1, &runs, set)?;
            let b = eval_pos_with_runs(p2, &runs, set)?;
            if a > b {
                return None;
            }
            Some(runs.chars()[a as usize..b as usize].iter().collect())
        }
    }
}

/// Evaluates a full concatenation expression.
pub fn eval_expr<S>(
    expr: &StringExpr<S>,
    resolve: &mut impl FnMut(&S) -> Option<String>,
    set: &TokenSet,
) -> Option<String> {
    let mut out = String::new();
    for atom in &expr.atoms {
        out.push_str(&eval_atom(atom, resolve, set)?);
    }
    Some(out)
}

/// Evaluates an `Ls` expression (sources are input variables) on an input
/// state, i.e. one spreadsheet row.
pub fn eval_on_state(expr: &StringExpr<Var>, inputs: &[&str], set: &TokenSet) -> Option<String> {
    eval_expr(
        expr,
        &mut |v: &Var| inputs.get(v.0 as usize).map(|s| (*s).to_string()),
        set,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::RegexSeq;
    use crate::tokens::Token;

    fn set() -> TokenSet {
        TokenSet::standard()
    }

    #[test]
    fn cpos_positive_and_negative() {
        assert_eq!(eval_pos(&PosExpr::CPos(0), "abc", &set()), Some(0));
        assert_eq!(eval_pos(&PosExpr::CPos(3), "abc", &set()), Some(3));
        assert_eq!(eval_pos(&PosExpr::CPos(-1), "abc", &set()), Some(3));
        assert_eq!(eval_pos(&PosExpr::CPos(-4), "abc", &set()), Some(0));
        assert_eq!(eval_pos(&PosExpr::CPos(4), "abc", &set()), None);
        assert_eq!(eval_pos(&PosExpr::CPos(-5), "abc", &set()), None);
    }

    #[test]
    fn pos_counts_from_left_and_right() {
        let slash_then = PosExpr::Pos {
            r1: RegexSeq::token(Token::Special('/')),
            r2: RegexSeq::epsilon(),
            c: 1,
        };
        assert_eq!(eval_pos(&slash_then, "10/12/2010", &set()), Some(3));
        let second = PosExpr::Pos {
            r1: RegexSeq::token(Token::Special('/')),
            r2: RegexSeq::epsilon(),
            c: 2,
        };
        assert_eq!(eval_pos(&second, "10/12/2010", &set()), Some(6));
        let last = PosExpr::Pos {
            r1: RegexSeq::token(Token::Special('/')),
            r2: RegexSeq::epsilon(),
            c: -1,
        };
        assert_eq!(eval_pos(&last, "10/12/2010", &set()), Some(6));
        let too_many = PosExpr::Pos {
            r1: RegexSeq::token(Token::Special('/')),
            r2: RegexSeq::epsilon(),
            c: 3,
        };
        assert_eq!(eval_pos(&too_many, "10/12/2010", &set()), None);
    }

    #[test]
    fn pos_zero_count_undefined() {
        let p = PosExpr::Pos {
            r1: RegexSeq::epsilon(),
            r2: RegexSeq::epsilon(),
            c: 0,
        };
        assert_eq!(eval_pos(&p, "abc", &set()), None);
    }

    #[test]
    fn substr_extracts_between_positions() {
        // SubStr(v1, pos(SlashTok, ε, 1), pos(EndTok, ε, 1)) on "10/12/2010"
        // = "12/2010" (paper Example 1's f5).
        let atom = AtomicExpr::SubStr {
            src: Var(0),
            p1: PosExpr::Pos {
                r1: RegexSeq::token(Token::Special('/')),
                r2: RegexSeq::epsilon(),
                c: 1,
            },
            p2: PosExpr::Pos {
                r1: RegexSeq::epsilon(),
                r2: RegexSeq::token(Token::End),
                c: 1,
            },
        };
        let expr = StringExpr::atom(atom);
        assert_eq!(
            eval_on_state(&expr, &["10/12/2010"], &set()),
            Some("12/2010".into())
        );
    }

    #[test]
    fn substr2_second_alnum_word() {
        // SubStr2(v1, AlphTok, 2) ≡ SubStr(v1, pos(ε, AlphTok, 2), pos(AlphTok, ε, 2)).
        let atom = AtomicExpr::SubStr {
            src: Var(0),
            p1: PosExpr::Pos {
                r1: RegexSeq::epsilon(),
                r2: RegexSeq::token(Token::AlphNum),
                c: 2,
            },
            p2: PosExpr::Pos {
                r1: RegexSeq::token(Token::AlphNum),
                r2: RegexSeq::epsilon(),
                c: 2,
            },
        };
        assert_eq!(
            eval_on_state(&StringExpr::atom(atom), &["Alan Turing"], &set()),
            Some("Turing".into())
        );
    }

    #[test]
    fn example4_name_formatting() {
        // Concatenate(SubStr2(v1, AlphTok, 2), ConstStr(" "),
        //             SubStr2(v1, UpperTok, 1)): "Alan Turing" -> "Turing A".
        let word2 = AtomicExpr::SubStr {
            src: Var(0),
            p1: PosExpr::Pos {
                r1: RegexSeq::epsilon(),
                r2: RegexSeq::token(Token::AlphNum),
                c: 2,
            },
            p2: PosExpr::Pos {
                r1: RegexSeq::token(Token::AlphNum),
                r2: RegexSeq::epsilon(),
                c: 2,
            },
        };
        let upper1 = AtomicExpr::SubStr {
            src: Var(0),
            p1: PosExpr::Pos {
                r1: RegexSeq::epsilon(),
                r2: RegexSeq::token(Token::Upper),
                c: 1,
            },
            p2: PosExpr::Pos {
                r1: RegexSeq::token(Token::Upper),
                r2: RegexSeq::epsilon(),
                c: 1,
            },
        };
        let expr = StringExpr {
            atoms: vec![word2, AtomicExpr::ConstStr(" ".into()), upper1],
        };
        assert_eq!(
            eval_on_state(&expr, &["Alan Turing"], &set()),
            Some("Turing A".into())
        );
    }

    #[test]
    fn undefined_propagates() {
        let atom: AtomicExpr<Var> = AtomicExpr::SubStr {
            src: Var(0),
            p1: PosExpr::CPos(5),
            p2: PosExpr::CPos(-1),
        };
        assert_eq!(
            eval_on_state(&StringExpr::atom(atom), &["ab"], &set()),
            None
        );
        // Unknown variable.
        let whole = StringExpr::atom(AtomicExpr::Whole(Var(7)));
        assert_eq!(eval_on_state(&whole, &["ab"], &set()), None);
        // Crossed positions.
        let crossed: AtomicExpr<Var> = AtomicExpr::SubStr {
            src: Var(0),
            p1: PosExpr::CPos(-1),
            p2: PosExpr::CPos(0),
        };
        assert_eq!(
            eval_on_state(&StringExpr::atom(crossed), &["ab"], &set()),
            None
        );
    }

    #[test]
    fn negative_cpos_substr_paper_example7() {
        // SubStr(v1, -3, -1) extracts the minutes from "0815" -> "15".
        let atom: AtomicExpr<Var> = AtomicExpr::SubStr {
            src: Var(0),
            p1: PosExpr::CPos(-3),
            p2: PosExpr::CPos(-1),
        };
        assert_eq!(
            eval_on_state(&StringExpr::atom(atom), &["0815"], &set()),
            Some("15".into())
        );
    }

    #[test]
    fn whole_var_and_const() {
        let expr = StringExpr {
            atoms: vec![AtomicExpr::Whole(Var(1)), AtomicExpr::ConstStr("!".into())],
        };
        assert_eq!(eval_on_state(&expr, &["a", "b"], &set()), Some("b!".into()));
    }
}
