//! Differential harness for the wire-level serving stack.
//!
//! The server must be a transparent front door: every byte a client gets
//! over a real socket must be exactly what the in-process service plane
//! produces for the same request. This harness replays the full 50-task
//! benchmark suite through `sst-server` — batch learn, batch apply, and
//! the interactive session loop — at engine pool widths 1, 2 and the
//! machine width, and asserts the NDJSON response bodies are
//! **bit-identical** to encoding the in-process `Engine::learn_batch` /
//! `Engine::apply_batch` / `Session::run_column` results with the same
//! wire codec.

use std::sync::Arc;

use semantic_strings::benchmarks::all_tasks;
use semantic_strings::core::{default_threads, SynthesisOptions};
use semantic_strings::prelude::*;
use semantic_strings::service::{encode_cell_lines, encode_lines, WireLearnResponse};

const MAX_EXAMPLES: usize = 3;

#[test]
fn served_responses_are_bit_identical_to_the_service_plane() {
    let wide = default_threads().max(2);
    let mut widths = vec![1usize, 2];
    if wide > 2 {
        widths.push(wide);
    }

    let tasks = all_tasks();
    for &threads in &widths {
        let options = SynthesisOptions::builder().threads(threads).build();

        // The served engines and their in-process twins share nothing but
        // the database contents and options: separate caches, separate
        // pools. Identical bytes must come out anyway.
        let engines: Vec<(String, Engine)> = tasks
            .iter()
            .map(|task| {
                (
                    format!("task-{}", task.id),
                    Engine::with_options(Arc::new(task.db.clone()), options.clone()),
                )
            })
            .collect();
        let server =
            Server::bind_named(engines, ServerConfig::default()).expect("bind equivalence server");
        let mut client = Client::connect(server.local_addr()).expect("connect");

        for task in &tasks {
            let name = format!("task-{}", task.id);
            let twin = Engine::with_options(Arc::new(task.db.clone()), options.clone());

            // The converged example sequence (derived on the twin; the
            // protocol is deterministic, so the server side would derive
            // the same one).
            let mut probe = twin.session();
            let outcome = probe
                .converge_with(&task.rows, MAX_EXAMPLES)
                .unwrap_or_else(|e| panic!("task {} ({}): {e}", task.id, task.name));
            let examples = probe.examples().to_vec();
            let inputs: Vec<Vec<String>> = task.rows.iter().map(|r| r.inputs.clone()).collect();

            // Batch learn: one request per example prefix, so the batch
            // mixes one- and multi-example learns.
            let learn_requests: Vec<LearnRequest> = (1..=examples.len())
                .map(|n| LearnRequest::new(examples[..n].to_vec()))
                .collect();
            let local_learn: Vec<WireLearnResponse> = twin
                .learn_batch(&learn_requests)
                .iter()
                .map(WireLearnResponse::from_response)
                .collect();
            let wire_learn = client
                .learn(&name, &learn_requests)
                .unwrap_or_else(|e| panic!("task {} ({}) learn: {e}", task.id, task.name));
            assert_eq!(
                encode_lines(&wire_learn),
                encode_lines(&local_learn),
                "task {} ({}) width {threads}: served learn bytes drifted",
                task.id,
                task.name
            );

            // Batch apply over the full input column.
            let apply_requests = vec![
                ApplyRequest::new(examples[..1].to_vec(), inputs.clone()),
                ApplyRequest::new(examples.clone(), inputs.clone()),
            ];
            let local_apply = twin.apply_batch(&apply_requests);
            let wire_apply = client
                .apply(&name, &apply_requests)
                .unwrap_or_else(|e| panic!("task {} ({}) apply: {e}", task.id, task.name));
            assert_eq!(
                encode_lines(&wire_apply),
                encode_lines(&local_apply),
                "task {} ({}) width {threads}: served apply bytes drifted",
                task.id,
                task.name
            );

            // The interactive loop: a served session fed the converged
            // examples must predict the same column as the twin session.
            let info = client
                .create_session(&name, &examples)
                .unwrap_or_else(|e| panic!("task {} ({}) create: {e}", task.id, task.name));
            let wire_cells = client
                .run_column(&name, info.session, &inputs)
                .unwrap_or_else(|e| panic!("task {} ({}) run_column: {e}", task.id, task.name));
            let mut local_session = twin.session();
            local_session.add_examples(examples.clone());
            let local_cells = local_session.run_column(&inputs).unwrap_or_else(|e| {
                panic!("task {} ({}) local run_column: {e}", task.id, task.name)
            });
            assert_eq!(
                encode_cell_lines(&wire_cells),
                encode_cell_lines(&local_cells),
                "task {} ({}) width {threads}: served column bytes drifted",
                task.id,
                task.name
            );
            if outcome.converged {
                let status = client
                    .status(&name, info.session)
                    .unwrap_or_else(|e| panic!("task {} ({}) status: {e}", task.id, task.name));
                // A converged conversation with no watched inputs reports
                // converged over the wire too.
                assert!(
                    status.is_converged(),
                    "task {} ({}) width {threads}: wire status disagrees",
                    task.id,
                    task.name
                );
            }
            client
                .close_session(&name, info.session)
                .unwrap_or_else(|e| panic!("task {} ({}) close: {e}", task.id, task.name));
        }
    }
}
