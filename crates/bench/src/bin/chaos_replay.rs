//! Replays the §7 benchmark suite against a live `sst-server` while a
//! seeded [`FaultPlan`] injects delays, dropped connections, truncated
//! responses, and handler panics — then proves the stack absorbed all of
//! it: no hangs, no poisoned locks, every fault surfaced as a *typed*
//! error, and a final fault-free wave bit-identical to the in-process
//! plane with the engine caches still warm. Emits a JSON chaos report
//! (`BENCH_PR9.json`), including the cancellation-latency quantiles for
//! deadline-aborted learns.
//!
//! Phases:
//!
//! 1. **Chaos drive** — N interactive sessions run their §3.2 loop to
//!    convergence over the wire with injection live. Harness-level
//!    retries (bounded, reconnect-on-transport-error) classify every
//!    surfaced failure: transport drops/truncations, typed 408/429/500.
//!    Anything else — a decode error, an untyped status — fails the run.
//! 2. **Churn** — retry-configured clients (`ClientConfig::retries`)
//!    hammer `/metrics` until the plan has injected at least
//!    `--target-faults` faults, exercising the client's capped-backoff
//!    retry loop against live drops (the server counts the
//!    `x-retry-attempt` headers it sees).
//! 3. **Cancellation** — injection off; every task gets learn requests
//!    with `deadline-ms: 0`, which must answer typed 408 in bounded
//!    time. Round-trip latencies land in the report's
//!    `cancellation.latency` quantiles.
//! 4. **Fault-free wave** — fresh sessions replay every task on the same
//!    live server; convergence, `run_column` cells and batch-apply
//!    responses must be bit-identical to an in-process `Engine`/`Session`
//!    replay, and `/metrics` must show the caches were still warm (chaos
//!    must not have cost the memo plane anything).
//!
//! Usage:
//!   `cargo run --release -p sst-bench --bin chaos_replay > BENCH_PR9.json`
//!   `cargo run --release -p sst-bench --bin chaos_replay -- --smoke`
//!   `... -- --sessions 500 --fault-rate-ppm 120000 --seed 7`

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sst_bench::MAX_EXAMPLES;
use sst_benchmarks::{all_tasks, BenchmarkTask};
use sst_server::{
    Client, ClientConfig, ClientError, FaultPlan, LatencyHistogram, Server, ServerConfig,
    DRAIN_STOPPED,
};
use sst_service::{ApplyRequest, Engine, LearnRequest, ServiceError};

/// Chaos-driven sessions in the default full run.
const SESSIONS_DEFAULT: usize = 400;
const SESSIONS_SMOKE: usize = 60;

/// Client connections (= worker threads).
const CONNECTIONS_DEFAULT: usize = 12;
const CONNECTIONS_SMOKE: usize = 8;

/// Floor on injected faults before the run may end.
const TARGET_FAULTS_DEFAULT: usize = 1000;
const TARGET_FAULTS_SMOKE: usize = 60;

/// `deadline-ms: 0` learns in the cancellation-latency phase.
const CANCEL_REQUESTS_DEFAULT: usize = 200;
const CANCEL_REQUESTS_SMOKE: usize = 40;

/// Fault probability per site visit, parts per million.
const RATE_PPM_DEFAULT: usize = 80_000;

/// Injected delay length.
const FAULT_DELAY_MS_DEFAULT: usize = 15;

/// Seed for the fault schedule (and report reproducibility).
const SEED_DEFAULT: usize = 0xC4A0_55ED;

/// Consecutive failed attempts before the harness declares a hang/crash.
const MAX_PERSIST_ATTEMPTS: usize = 50;

fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

fn quantiles(hist: &LatencyHistogram) -> String {
    format!(
        "{{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}",
        hist.count(),
        hist.quantile_ns(0.5),
        hist.quantile_ns(0.99)
    )
}

fn inputs_of(task: &BenchmarkTask) -> Vec<Vec<String>> {
    task.rows.iter().map(|r| r.inputs.clone()).collect()
}

/// Every failure the chaos wave observed, by typed kind. A fault must
/// surface as a transport error or a typed 408/429/5xx; `decode` and
/// `other` are the "stack leaked something untyped" buckets and must
/// stay zero.
#[derive(Default)]
struct ChaosCounts {
    io: AtomicU64,
    http_408: AtomicU64,
    http_429: AtomicU64,
    http_5xx: AtomicU64,
    http_other: AtomicU64,
    decode: AtomicU64,
}

impl ChaosCounts {
    fn record(&self, err: &ClientError) {
        let bucket = match err {
            ClientError::Io(_) => &self.io,
            ClientError::Decode(_) => &self.decode,
            ClientError::Http { status, .. } => match status {
                408 => &self.http_408,
                429 => &self.http_429,
                s if *s >= 500 => &self.http_5xx,
                _ => &self.http_other,
            },
        };
        bucket.fetch_add(1, Ordering::Relaxed);
    }

    fn total(&self) -> u64 {
        [
            &self.io,
            &self.http_408,
            &self.http_429,
            &self.http_5xx,
            &self.http_other,
            &self.decode,
        ]
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .sum()
    }
}

/// Runs `jobs.len()` closures over `connections` worker threads, each
/// worker owning one keep-alive [`Client`] built from `config`.
fn fan_out<J: Send, R: Send>(
    addr: SocketAddr,
    config: &ClientConfig,
    connections: usize,
    jobs: Vec<J>,
    work: impl Fn(&mut Client, J) -> R + Sync,
) -> Vec<R> {
    let jobs = Mutex::new(jobs.into_iter().map(Some).collect::<Vec<_>>());
    let cursor = AtomicUsize::new(0);
    let results = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..connections {
            scope.spawn(|| {
                let mut client =
                    Client::connect_with(addr, config.clone()).expect("connect worker client");
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .get_mut(index)
                        .and_then(Option::take)
                    else {
                        return;
                    };
                    let result = work(&mut client, job);
                    results
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(result);
                }
            });
        }
    });
    results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Retries `op` until it succeeds, classifying every surfaced failure
/// and dialing a fresh connection after transport errors (the old one
/// may hold half a frame). A bounded attempt budget turns a genuine
/// hang or crash into a loud harness failure instead of a stall.
fn persist<T>(
    addr: SocketAddr,
    config: &ClientConfig,
    client: &mut Client,
    counts: &ChaosCounts,
    what: &str,
    mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
) -> T {
    for _ in 0..MAX_PERSIST_ATTEMPTS {
        match op(client) {
            Ok(value) => return value,
            Err(err) => {
                counts.record(&err);
                if matches!(err, ClientError::Io(_)) {
                    *client = Client::connect_with(addr, config.clone())
                        .expect("reconnect after transport fault");
                }
            }
        }
    }
    panic!("{what}: {MAX_PERSIST_ATTEMPTS} consecutive failures under chaos");
}

/// One chaos-driven session: the §3.2 convergence loop where every
/// operation tolerates injected faults.
#[allow(clippy::too_many_arguments)]
fn drive_chaos_session(
    addr: SocketAddr,
    config: &ClientConfig,
    client: &mut Client,
    task_idx: usize,
    tasks: &[BenchmarkTask],
    engine_names: &[String],
    counts: &ChaosCounts,
) -> bool {
    let task = &tasks[task_idx];
    let engine = &engine_names[task_idx];
    let inputs = inputs_of(task);
    let mut examples = vec![task.rows[0].clone()];
    let info = persist(addr, config, client, counts, "create session", |c| {
        c.create_session(engine, &examples[..1])
    });
    let converged = loop {
        let cells = persist(addr, config, client, counts, "run_column", |c| {
            c.run_column(engine, info.session, &inputs)
        });
        let failing = task
            .rows
            .iter()
            .zip(&cells)
            .position(|(row, cell)| cell.as_deref() != Some(row.output.as_str()));
        match failing {
            None => break true,
            Some(i) => {
                if examples.len() >= MAX_EXAMPLES {
                    break false;
                }
                let example = task.rows[i].clone();
                persist(addr, config, client, counts, "add example", |c| {
                    c.add_examples(engine, info.session, std::slice::from_ref(&example))
                });
                examples.push(example);
            }
        }
    };
    persist(addr, config, client, counts, "session status", |c| {
        c.status(engine, info.session)
    });
    // Close is the one call where a lost response makes the retry answer
    // 404 (the first close landed); that 404 is correct, not chaos.
    for _ in 0..MAX_PERSIST_ATTEMPTS {
        match client.close_session(engine, info.session) {
            Ok(()) => break,
            Err(ClientError::Http { status: 404, .. }) => break,
            Err(err) => {
                counts.record(&err);
                if matches!(err, ClientError::Io(_)) {
                    *client = Client::connect_with(addr, config.clone())
                        .expect("reconnect after transport fault");
                }
            }
        }
    }
    converged
}

/// `name ...` counter lines summed from Prometheus text.
fn scrape_counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .filter(|line| line.starts_with(name))
        .filter_map(|line| line.rsplit_once(' '))
        .map(|(_, value)| value.parse::<u64>().unwrap_or(0))
        .sum()
}

fn main() {
    // Injected handler panics unwind through the default hook before the
    // server's `catch_unwind` absorbs them; silence exactly those so the
    // report stays readable. Everything else still prints.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected handler panic"));
        if !injected {
            default_hook(info);
        }
    }));

    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|v| {
                v.parse::<usize>()
                    .unwrap_or_else(|_| panic!("{name} takes a non-negative integer"))
            })
    };
    let tasks = all_tasks();
    let sessions = flag("--sessions")
        .unwrap_or(if smoke {
            SESSIONS_SMOKE
        } else {
            SESSIONS_DEFAULT
        })
        .max(tasks.len());
    let connections = flag("--connections").unwrap_or(if smoke {
        CONNECTIONS_SMOKE
    } else {
        CONNECTIONS_DEFAULT
    });
    let target_faults = flag("--target-faults").unwrap_or(if smoke {
        TARGET_FAULTS_SMOKE
    } else {
        TARGET_FAULTS_DEFAULT
    });
    let cancel_requests = flag("--cancel-requests").unwrap_or(if smoke {
        CANCEL_REQUESTS_SMOKE
    } else {
        CANCEL_REQUESTS_DEFAULT
    });
    let rate_ppm = flag("--fault-rate-ppm").unwrap_or(RATE_PPM_DEFAULT) as u32;
    let delay_ms = flag("--fault-delay-ms").unwrap_or(FAULT_DELAY_MS_DEFAULT) as u64;
    let seed = flag("--seed").unwrap_or(SEED_DEFAULT) as u64;

    let engines: Vec<(String, Engine)> = tasks
        .iter()
        .map(|task| {
            (
                format!("task-{}", task.id),
                Engine::new(Arc::new(task.db.clone())),
            )
        })
        .collect();
    let engine_names: Vec<String> = engines.iter().map(|(n, _)| n.clone()).collect();

    let plan = Arc::new(FaultPlan::new(seed, rate_ppm, delay_ms));
    let mut server = Server::bind_named(
        engines,
        ServerConfig {
            fault_plan: Some(Arc::clone(&plan)),
            ..ServerConfig::default()
        },
    )
    .expect("bind server");
    let addr = server.local_addr();

    // Clients never hang: every socket read is bounded, and drive-side
    // retries live in the harness (zero client retries) so every fault
    // is visible to the classifier.
    let drive_config = ClientConfig {
        request_timeout: Some(Duration::from_secs(5)),
        ..ClientConfig::default()
    };
    // Churn clients exercise the real client retry loop instead.
    let churn_config = ClientConfig {
        request_timeout: Some(Duration::from_secs(5)),
        retries: 3,
        ..ClientConfig::default()
    };
    let counts = ChaosCounts::default();

    // Phase 1: the full suite driven to convergence with injection live.
    let chaos_start = Instant::now();
    let chaos_jobs: Vec<usize> = (0..sessions).map(|k| k % tasks.len()).collect();
    let chaos_outcomes = fan_out(addr, &drive_config, connections, chaos_jobs, |client, t| {
        drive_chaos_session(
            addr,
            &drive_config,
            client,
            t,
            &tasks,
            &engine_names,
            &counts,
        )
    });
    let chaos_wall = chaos_start.elapsed();
    let chaos_converged = chaos_outcomes.iter().filter(|c| **c).count();

    // Phase 2: churn until the plan has injected at least the target
    // fault count. The retry-enabled clients absorb drops and 5xx with
    // backoff; the server's sst_retries_total counts what they resent.
    let churn_start = Instant::now();
    let mut churn_rounds = 0usize;
    let mut churn_client =
        Client::connect_with(addr, drive_config.clone()).expect("connect churn scrape client");
    loop {
        let text = persist(
            addr,
            &drive_config,
            &mut churn_client,
            &counts,
            "scrape metrics",
            |c| c.metrics_text(),
        );
        let retried = scrape_counter(&text, "sst_retries_total");
        if (plan.injected().total() as usize) >= target_faults && retried > 0 {
            break;
        }
        churn_rounds += 1;
        assert!(
            churn_rounds <= 400,
            "churn failed to reach {target_faults} injected faults with client retries"
        );
        let batch: Vec<usize> = (0..connections * 8).collect();
        fan_out(addr, &churn_config, connections, batch, |client, _| {
            if let Err(err) = client.metrics_text() {
                counts.record(&err);
                *client = Client::connect_with(addr, churn_config.clone())
                    .expect("reconnect churn client");
            }
        });
    }
    drop(churn_client);
    let churn_wall = churn_start.elapsed();
    let injected = plan.injected();

    // Phase 3: injection off; deadline-ms: 0 learns must answer typed
    // 408 in bounded time. Round-trips feed the cancellation histogram.
    plan.set_enabled(false);
    let cancel_hist = LatencyHistogram::default();
    let timed_out = AtomicU64::new(0);
    let cancel_jobs: Vec<usize> = (0..cancel_requests).map(|k| k % tasks.len()).collect();
    let cancel_start = Instant::now();
    fan_out(
        addr,
        &drive_config,
        connections,
        cancel_jobs,
        |client, t| {
            client.set_deadline_ms(Some(0));
            let task = &tasks[t];
            let request = LearnRequest::new(vec![task.rows[0].clone(), task.rows[1].clone()]);
            let start = Instant::now();
            let result = client.learn(&engine_names[t], std::slice::from_ref(&request));
            cancel_hist.observe(start.elapsed());
            match result {
                Err(ClientError::Http {
                    status: 408,
                    error: ServiceError::DeadlineExceeded { .. },
                }) => {
                    timed_out.fetch_add(1, Ordering::Relaxed);
                }
                other => panic!("deadline-ms 0 learn must answer typed 408, got {other:?}"),
            }
            client.set_deadline_ms(None);
        },
    );
    let cancel_wall = cancel_start.elapsed();

    // Phase 4: fault-free wave on the same live server — every task
    // replayed over the wire and in-process, compared bit for bit, with
    // the memo plane still warm from the chaos traffic.
    let mut scrape_client = Client::connect(addr).expect("connect scrape client");
    let hits_before = scrape_counter(
        &scrape_client.metrics_text().expect("metrics"),
        "sst_cache_hits_total",
    );
    let final_start = Instant::now();
    let final_jobs: Vec<usize> = (0..tasks.len()).collect();
    let final_outcomes = fan_out(addr, &drive_config, connections, final_jobs, |client, t| {
        let task = &tasks[t];
        let engine = &engine_names[t];
        let inputs = inputs_of(task);
        let mut examples = vec![task.rows[0].clone()];
        let info = client
            .create_session(engine, &examples[..1])
            .expect("create final session");
        let (converged, cells) = loop {
            let cells = client
                .run_column(engine, info.session, &inputs)
                .expect("final run_column");
            let failing = task
                .rows
                .iter()
                .zip(&cells)
                .position(|(row, cell)| cell.as_deref() != Some(row.output.as_str()));
            match failing {
                None => break (true, cells),
                Some(i) => {
                    if examples.len() >= MAX_EXAMPLES {
                        break (false, cells);
                    }
                    let example = task.rows[i].clone();
                    client
                        .add_examples(engine, info.session, std::slice::from_ref(&example))
                        .expect("final add example");
                    examples.push(example);
                }
            }
        };
        let applies = client
            .apply(
                engine,
                &[ApplyRequest::new(examples.clone(), inputs.clone())],
            )
            .expect("final apply");
        client
            .close_session(engine, info.session)
            .expect("close final session");
        (t, converged, examples, cells, applies)
    });
    let final_wall = final_start.elapsed();
    let hits_after = scrape_counter(
        &scrape_client.metrics_text().expect("metrics"),
        "sst_cache_hits_total",
    );
    let warm_hits = hits_after - hits_before;

    let mut equivalence_ok = true;
    for (t, wire_converged, wire_examples, wire_cells, wire_applies) in &final_outcomes {
        let task = &tasks[*t];
        let engine = Engine::new(Arc::new(task.db.clone()));
        let mut session = engine.session();
        let local = session
            .converge_with(&task.rows, MAX_EXAMPLES)
            .expect("in-process convergence");
        let cells = session.run_column(&inputs_of(task)).expect("run_column");
        let applies =
            engine.apply_batch(&[ApplyRequest::new(wire_examples.clone(), inputs_of(task))]);
        let apply_equal = wire_applies.len() == 1
            && match (&applies[0].result, &wire_applies[0].result) {
                (Ok(local_cells), Ok(wire_cells)) => local_cells == wire_cells,
                (Err(_), Err(_)) => true,
                _ => false,
            };
        let ok = local.converged == *wire_converged
            && local.examples_used == wire_examples.len()
            && cells == *wire_cells
            && session.examples() == &wire_examples[..]
            && apply_equal;
        if !ok {
            equivalence_ok = false;
            eprintln!(
                "equivalence mismatch on task {} ({}): local converged={} examples={} vs wire converged={} examples={}",
                task.id,
                task.name,
                local.converged,
                local.examples_used,
                wire_converged,
                wire_examples.len()
            );
        }
    }

    let metrics_text = scrape_client.metrics_text().expect("metrics");
    let healthz_ok = scrape_client.healthz().expect("healthz");
    let panics_caught = server.caught_panics();
    let deadline_exceeded = scrape_counter(&metrics_text, "sst_deadline_exceeded_total");
    let timeouts_seen = scrape_counter(&metrics_text, "sst_timeouts_total");
    let retries_seen = scrape_counter(&metrics_text, "sst_retries_total");
    drop(scrape_client);
    server.shutdown();
    let drained = server.drain_state() == DRAIN_STOPPED && server.active_requests() == 0;

    let observed = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"suite\": \"chaos_replay\",\n  \"smoke\": {smoke},\n"
    ));
    out.push_str(&format!(
        "  \"config\": {{\"tasks\": {}, \"sessions\": {}, \"connections\": {}, \"seed\": {}, \"fault_rate_ppm\": {}, \"fault_delay_ms\": {}, \"target_faults\": {}}},\n",
        tasks.len(),
        sessions,
        connections,
        seed,
        rate_ppm,
        delay_ms,
        target_faults,
    ));
    out.push_str(&format!(
        "  \"chaos\": {{\n    \"sessions\": {}, \"converged\": {}, \"wall_s\": {}, \"churn_rounds\": {}, \"churn_wall_s\": {},\n    \"injected\": {{\"total\": {}, \"delays\": {}, \"drops\": {}, \"truncates\": {}, \"panics\": {}}},\n    \"observed\": {{\"total\": {}, \"io\": {}, \"http_408\": {}, \"http_429\": {}, \"http_5xx\": {}, \"http_other\": {}, \"decode\": {}}}\n  }},\n",
        sessions,
        chaos_converged,
        secs(chaos_wall),
        churn_rounds,
        secs(churn_wall),
        injected.total(),
        injected.delays,
        injected.drops,
        injected.truncates,
        injected.panics,
        counts.total(),
        observed(&counts.io),
        observed(&counts.http_408),
        observed(&counts.http_429),
        observed(&counts.http_5xx),
        observed(&counts.http_other),
        observed(&counts.decode),
    ));
    out.push_str(&format!(
        "  \"cancellation\": {{\"requests\": {}, \"timed_out\": {}, \"wall_s\": {}, \"latency\": {}}},\n",
        cancel_requests,
        timed_out.load(Ordering::Relaxed),
        secs(cancel_wall),
        quantiles(&cancel_hist),
    ));
    out.push_str(&format!(
        "  \"fault_free\": {{\"tasks\": {}, \"wall_s\": {}, \"equivalence_ok\": {}, \"cache_hits\": {}}},\n",
        final_outcomes.len(),
        secs(final_wall),
        equivalence_ok,
        warm_hits,
    ));
    out.push_str(&format!(
        "  \"server\": {{\"panics_caught\": {}, \"deadline_exceeded\": {}, \"timeouts\": {}, \"retries_seen\": {}, \"healthz_ok\": {}, \"drained\": {}}}\n",
        panics_caught,
        deadline_exceeded,
        timeouts_seen,
        retries_seen,
        healthz_ok,
        drained,
    ));
    out.push_str("}\n");
    print!("{out}");

    // The chaos contract, asserted loudly for CI.
    assert!(
        injected.total() as usize >= target_faults,
        "injected {} faults, needed {target_faults}",
        injected.total()
    );
    assert_eq!(
        observed(&counts.decode),
        0,
        "a fault leaked an undecodable response"
    );
    assert_eq!(
        observed(&counts.http_other),
        0,
        "a fault surfaced as an unexpected HTTP status"
    );
    assert_eq!(
        panics_caught, injected.panics,
        "every injected panic must be caught by the request boundary, and nothing else may panic"
    );
    assert_eq!(
        timed_out.load(Ordering::Relaxed) as usize,
        cancel_requests,
        "every deadline-ms 0 learn must answer typed 408"
    );
    assert!(
        cancel_hist.quantile_ns(0.99) < 1_000_000_000,
        "cancellation must abort in bounded time"
    );
    assert_eq!(
        chaos_converged, sessions,
        "chaos sessions failed to converge"
    );
    assert!(equivalence_ok, "fault-free wave diverged from in-process");
    assert!(warm_hits > 0, "chaos cost the engines their warm caches");
    assert!(
        retries_seen > 0,
        "client retry loop never reached the server"
    );
    assert!(healthz_ok, "server unhealthy after chaos");
    assert!(drained, "shutdown failed to drain in-flight requests");
}
